//! Unified, deterministic fault-injection plane.
//!
//! The paper's fault-tolerance story (Sec. 4.6, Fig. 5c, Fig. 10) spans
//! every layer of the stack: failed functions respawn, crashed servers
//! lose their in-flight invocations, silent drones are detected by missed
//! heartbeats and their area is repartitioned, and a backup controller
//! takes over when the primary dies. A [`FaultPlan`] describes all of
//! those disturbances — scheduled ones (a server crash at t=30 s) and
//! stochastic ones (5 % packet loss, exponential device MTBF) — in one
//! declarative value that experiments attach via
//! `ExperimentConfig::faults`.
//!
//! ## Determinism contract
//!
//! Every stochastic draw a fault makes comes from a *dedicated lane* of
//! the replicate's seed chain (`RngForge::child("faults")`), never from
//! the streams the fault-free simulation uses. Two consequences:
//!
//! 1. a run with an inert plan ([`FaultPlan::default`]) is **bit-for-bit
//!    identical** to a run with no plan at all — no fault RNG is even
//!    created, so no stream is perturbed;
//! 2. changing a fault knob (say the packet-loss rate) never reshuffles
//!    the workload's own randomness, so degradation curves compare the
//!    *same* task sample under different disturbance levels.
//!
//! The consumers live in their own crates — `net::fabric` applies
//! [`NetFaults`], `faas::cluster` applies [`ServerCrash`] schedules and
//! the [`RetryPolicy`], and `core::mission`/`core::controller` apply
//! [`DeviceFaults`] — but the vocabulary is defined here so a plan can be
//! validated and threaded as one value.

use std::fmt;

use crate::time::SimDuration;

/// Trace category used by every fault-plane event
/// (`fault/injected`, `fault/detected`, `fault/recovered`).
pub const TRACE_CAT: &str = "fault";
/// Trace event name emitted at the instant a fault strikes.
pub const EV_INJECTED: &str = "injected";
/// Trace event name emitted when the system *notices* the fault.
pub const EV_DETECTED: &str = "detected";
/// Trace event name emitted when service is restored.
pub const EV_RECOVERED: &str = "recovered";

/// The paper's heartbeat-based failure-detection window: a device (or the
/// primary controller) is declared dead after 3 s of missed heartbeats
/// (Sec. 4.6).
pub const DETECTION_WINDOW: SimDuration = SimDuration::from_secs(3);

/// Why a [`FaultPlan`] was rejected by [`FaultPlan::validate`].
///
/// Typed variants (instead of a bare string) let config gates match on
/// the exact defect — a NaN window versus an overlapping partition — and
/// keep the boundary conditions unit-testable one by one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultPlanError {
    /// A probability knob outside `[0, 1]` (or NaN).
    InvalidProbability {
        /// Which knob.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// `net.bandwidth_factor` outside `(0, 1]` (or NaN).
    InvalidBandwidthFactor {
        /// The offending value.
        value: f64,
    },
    /// A fault window that is NaN/infinite, starts before `t = 0`, or is
    /// inverted/empty (`until <= from`).
    InvalidWindow {
        /// Which window family (`"partition"`, `"link outage"`).
        name: &'static str,
        /// Window start, seconds.
        from: f64,
        /// Window end, seconds.
        until: f64,
    },
    /// Two partition windows overlap; hold/heal accounting needs them
    /// disjoint (merge adjacent windows into one instead).
    OverlappingPartitions {
        /// End of the earlier window, seconds.
        first_until: f64,
        /// Start of the later window that begins before `first_until`.
        second_from: f64,
    },
    /// A per-device fault targets a device id beyond the fleet.
    DeviceOutOfRange {
        /// The offending id.
        device: u32,
        /// Fleet size.
        fleet: u32,
    },
    /// A server crash targets a server id beyond the cluster.
    ServerOutOfRange {
        /// The offending id.
        server: u32,
        /// Cluster size.
        cluster: u32,
    },
    /// A server crash with a negative/NaN instant or non-positive
    /// downtime.
    InvalidServerCrash {
        /// Crash instant, seconds.
        at: f64,
        /// Downtime, seconds.
        down: f64,
    },
    /// `retry.max_attempts == 0`.
    ZeroRetryAttempts,
    /// `retry.backoff_factor < 1` (or NaN).
    InvalidBackoffFactor {
        /// The offending value.
        value: f64,
    },
    /// A non-positive (or NaN) device MTBF.
    InvalidMtbf {
        /// The offending value.
        value: f64,
    },
    /// A negative (or NaN) controller-failover instant.
    InvalidControllerFailover {
        /// The offending value.
        value: f64,
    },
    /// A negative (or NaN) controller-takeover duration.
    InvalidTakeover {
        /// The offending value.
        value: f64,
    },
    /// `net.hold_bound == Some(0)`: a zero-capacity hold buffer would
    /// drop every held transfer.
    ZeroHoldBound,
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::InvalidProbability { name, value } => {
                write!(f, "{name} must be a probability in [0, 1], got {value}")
            }
            FaultPlanError::InvalidBandwidthFactor { value } => {
                write!(f, "net.bandwidth_factor must be in (0, 1], got {value}")
            }
            FaultPlanError::InvalidWindow { name, from, until } => write!(
                f,
                "{name} window must satisfy 0 <= from < until, got [{from}, {until})"
            ),
            FaultPlanError::OverlappingPartitions {
                first_until,
                second_from,
            } => write!(
                f,
                "partitions overlap: a window starting at {second_from} s begins before \
                 an earlier window ends at {first_until} s (merge them instead)"
            ),
            FaultPlanError::DeviceOutOfRange { device, fleet } => write!(
                f,
                "link outage targets device {device} but the fleet has {fleet}"
            ),
            FaultPlanError::ServerOutOfRange { server, cluster } => write!(
                f,
                "server crash targets server {server} but the cluster has {cluster}"
            ),
            FaultPlanError::InvalidServerCrash { at, down } => write!(
                f,
                "server crash needs at_secs >= 0 and down_secs > 0, got at {at} down {down}"
            ),
            FaultPlanError::ZeroRetryAttempts => {
                write!(f, "retry.max_attempts must be at least 1")
            }
            FaultPlanError::InvalidBackoffFactor { value } => {
                write!(f, "retry.backoff_factor must be >= 1, got {value}")
            }
            FaultPlanError::InvalidMtbf { value } => {
                write!(f, "devices.mtbf_secs must be positive, got {value}")
            }
            FaultPlanError::InvalidControllerFailover { value } => write!(
                f,
                "devices.controller_failover_at_secs must be >= 0, got {value}"
            ),
            FaultPlanError::InvalidTakeover { value } => write!(
                f,
                "devices.controller_takeover_secs must be >= 0, got {value}"
            ),
            FaultPlanError::ZeroHoldBound => {
                write!(f, "net.hold_bound must be at least 1 when set")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// A declarative description of every disturbance injected into one run.
///
/// The default plan is **inert**: [`FaultPlan::is_active`] returns
/// `false` and every consumer skips its fault path entirely, leaving the
/// simulation byte-identical to one that never heard of faults.
///
/// # Examples
///
/// ```rust
/// use hivemind_sim::faults::FaultPlan;
///
/// let plan = FaultPlan::default()
///     .packet_loss(0.05)
///     .server_crash(2, 30.0, 15.0)
///     .function_fault_rate(0.10)
///     .device_mtbf(600.0);
/// assert!(plan.is_active());
/// assert!(plan.validate(16, 4).is_ok());
/// assert!(!FaultPlan::default().is_active());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Network-layer disturbances (loss, degradation, outages, partitions).
    pub net: NetFaults,
    /// Scheduled cloud-server crash/recover windows.
    pub servers: Vec<ServerCrash>,
    /// Function-level failure process and the retry policy that masks it.
    pub functions: FunctionFaults,
    /// Device-fleet and controller failures.
    pub devices: DeviceFaults,
    /// Optional end-to-end latency SLO; when set, the recovery metrics
    /// report the fraction of completed tasks that violated it.
    pub slo: Option<SimDuration>,
}

impl FaultPlan {
    /// `true` if any knob deviates from the inert default.
    pub fn is_active(&self) -> bool {
        self.net.is_active()
            || !self.servers.is_empty()
            || self.functions.is_active()
            || self.devices.is_active()
            || self.slo.is_some()
    }

    /// Sets the per-transfer wireless packet-loss probability.
    pub fn packet_loss(mut self, p: f64) -> Self {
        self.net.packet_loss = p;
        self
    }

    /// Scales wireless bandwidth by `factor` (e.g. `0.5` halves it).
    pub fn bandwidth_factor(mut self, factor: f64) -> Self {
        self.net.bandwidth_factor = factor;
        self
    }

    /// Takes one device's WiFi link down over `[from_secs, until_secs)`.
    pub fn link_outage(mut self, device: u32, from_secs: f64, until_secs: f64) -> Self {
        self.net.disconnects.push(LinkOutage {
            device,
            from_secs,
            until_secs,
        });
        self
    }

    /// Partitions the whole wireless segment over `[from_secs, until_secs)`.
    pub fn partition(mut self, from_secs: f64, until_secs: f64) -> Self {
        self.net.partitions.push(Partition {
            from_secs,
            until_secs,
        });
        self
    }

    /// Crashes cloud server `server` at `at_secs` for `down_secs` seconds.
    pub fn server_crash(mut self, server: u32, at_secs: f64, down_secs: f64) -> Self {
        self.servers.push(ServerCrash {
            server,
            at_secs,
            down_secs,
        });
        self
    }

    /// Sets the per-attempt function failure probability (overrides the
    /// platform's calibrated `fault_rate`).
    pub fn function_fault_rate(mut self, rate: f64) -> Self {
        self.functions.fault_rate = Some(rate);
        self
    }

    /// Replaces the function retry policy.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.functions.retry = policy;
        self
    }

    /// Enables stochastic device failures with the given mean time
    /// between failures (exponential, per device).
    pub fn device_mtbf(mut self, mtbf_secs: f64) -> Self {
        self.devices.mtbf_secs = Some(mtbf_secs);
        self
    }

    /// Kills the primary controller at `at_secs`; the backup takes over
    /// after the 3 s detection window plus the configured takeover time.
    pub fn controller_failover(mut self, at_secs: f64) -> Self {
        self.devices.controller_failover_at_secs = Some(at_secs);
        self
    }

    /// Bounds the fabric's partition hold buffer to `bound` transfers:
    /// when a hold would exceed it, the newest transfer is dropped and
    /// counted instead of growing the buffer silently.
    pub fn partition_hold_bound(mut self, bound: u32) -> Self {
        self.net.hold_bound = Some(bound);
        self
    }

    /// Sets the end-to-end latency SLO used for the violation fraction.
    pub fn slo(mut self, slo: SimDuration) -> Self {
        self.slo = Some(slo);
        self
    }

    /// Checks every knob against the fleet shape (`devices` drones,
    /// `servers` cloud servers). Returns the first problem found as a
    /// typed [`FaultPlanError`] (human-readable through `Display`).
    pub fn validate(&self, devices: u32, servers: u32) -> Result<(), FaultPlanError> {
        let prob = |name: &'static str, p: f64| -> Result<(), FaultPlanError> {
            // NaN fails the range check too (comparisons are false).
            if !(0.0..=1.0).contains(&p) {
                return Err(FaultPlanError::InvalidProbability { name, value: p });
            }
            Ok(())
        };
        let window = |name: &'static str, from: f64, until: f64| -> Result<(), FaultPlanError> {
            if !(from.is_finite() && until.is_finite()) || from < 0.0 || until <= from {
                return Err(FaultPlanError::InvalidWindow { name, from, until });
            }
            Ok(())
        };
        prob("net.packet_loss", self.net.packet_loss)?;
        if !(self.net.bandwidth_factor > 0.0 && self.net.bandwidth_factor <= 1.0) {
            return Err(FaultPlanError::InvalidBandwidthFactor {
                value: self.net.bandwidth_factor,
            });
        }
        for o in &self.net.disconnects {
            if o.device >= devices {
                return Err(FaultPlanError::DeviceOutOfRange {
                    device: o.device,
                    fleet: devices,
                });
            }
            window("link outage", o.from_secs, o.until_secs)?;
        }
        for p in &self.net.partitions {
            window("partition", p.from_secs, p.until_secs)?;
        }
        // Partition windows must be pairwise disjoint: hold/heal (and the
        // disconnect plane's reconnect sessions) account per window, and
        // an overlap almost always means two schedules were concatenated
        // by mistake. Sorted by start, any overlap is adjacent.
        let mut starts: Vec<(f64, f64)> = self
            .net
            .partitions
            .iter()
            .map(|p| (p.from_secs, p.until_secs))
            .collect();
        starts.sort_by(|a, b| a.partial_cmp(b).expect("windows validated finite"));
        for pair in starts.windows(2) {
            if pair[1].0 < pair[0].1 {
                return Err(FaultPlanError::OverlappingPartitions {
                    first_until: pair[0].1,
                    second_from: pair[1].0,
                });
            }
        }
        if self.net.hold_bound == Some(0) {
            return Err(FaultPlanError::ZeroHoldBound);
        }
        for c in &self.servers {
            if c.server >= servers {
                return Err(FaultPlanError::ServerOutOfRange {
                    server: c.server,
                    cluster: servers,
                });
            }
            let at_ok = c.at_secs.is_finite() && c.at_secs >= 0.0;
            let down_ok = c.down_secs.is_finite() && c.down_secs > 0.0;
            if !at_ok || !down_ok {
                return Err(FaultPlanError::InvalidServerCrash {
                    at: c.at_secs,
                    down: c.down_secs,
                });
            }
        }
        if let Some(r) = self.functions.fault_rate {
            prob("functions.fault_rate", r)?;
        }
        let rp = &self.functions.retry;
        if rp.max_attempts == 0 {
            return Err(FaultPlanError::ZeroRetryAttempts);
        }
        // NaN-safe: a NaN backoff factor must be rejected too.
        if rp.backoff_factor.is_nan() || rp.backoff_factor < 1.0 {
            return Err(FaultPlanError::InvalidBackoffFactor {
                value: rp.backoff_factor,
            });
        }
        if let Some(mtbf) = self.devices.mtbf_secs {
            // NaN-safe: a NaN MTBF must be rejected too.
            let ok = mtbf.is_finite() && mtbf > 0.0;
            if !ok {
                return Err(FaultPlanError::InvalidMtbf { value: mtbf });
            }
        }
        if let Some(at) = self.devices.controller_failover_at_secs {
            if !(at.is_finite() && at >= 0.0) {
                return Err(FaultPlanError::InvalidControllerFailover { value: at });
            }
        }
        let takeover = self.devices.controller_takeover_secs;
        if !(takeover.is_finite() && takeover >= 0.0) {
            return Err(FaultPlanError::InvalidTakeover { value: takeover });
        }
        Ok(())
    }
}

/// Network-layer disturbances applied by `net::fabric` to transfers that
/// cross the wireless segment (wired cloud links are assumed reliable,
/// matching the paper's testbed where only the WiFi uplink is lossy).
#[derive(Debug, Clone, PartialEq)]
pub struct NetFaults {
    /// Per-transfer probability that a wireless transfer needs a
    /// retransmission round before it gets through.
    pub packet_loss: f64,
    /// Delay added per retransmission round (default 200 ms ≈ WiFi
    /// retransmit + backoff at the transport layer).
    pub retransmit: SimDuration,
    /// Multiplier on wireless bandwidth (1.0 = nominal). Applied when the
    /// topology is built, so it degrades every transfer uniformly.
    pub bandwidth_factor: f64,
    /// Per-device WiFi disconnect windows; transfers touching the device
    /// are held until the window closes (then retried).
    pub disconnects: Vec<LinkOutage>,
    /// Whole-segment partitions; every wireless transfer is held until
    /// the partition heals.
    pub partitions: Vec<Partition>,
    /// Upper bound on how many transfers the fabric may hold behind
    /// partition/outage windows at once. `None` (the default) keeps the
    /// historical unbounded-hold behaviour; `Some(n)` tail-drops the
    /// newest transfer once `n` are already held, counting each drop.
    pub hold_bound: Option<u32>,
}

impl Default for NetFaults {
    fn default() -> Self {
        NetFaults {
            packet_loss: 0.0,
            retransmit: SimDuration::from_millis(200),
            bandwidth_factor: 1.0,
            disconnects: Vec::new(),
            partitions: Vec::new(),
            hold_bound: None,
        }
    }
}

impl NetFaults {
    /// `true` if any network knob deviates from the inert default.
    pub fn is_active(&self) -> bool {
        self.packet_loss > 0.0
            || self.bandwidth_factor != 1.0
            || !self.disconnects.is_empty()
            || !self.partitions.is_empty()
            || self.hold_bound.is_some()
    }

    /// `true` if the fabric needs a per-transfer fault pass (loss or
    /// hold-back windows; pure bandwidth degradation is applied once at
    /// topology build time and needs no per-transfer work).
    pub fn per_transfer(&self) -> bool {
        self.packet_loss > 0.0 || !self.disconnects.is_empty() || !self.partitions.is_empty()
    }

    /// If a whole-segment partition covers instant `t_secs`, returns the
    /// heal instant (the latest `until` of any covering window — windows
    /// are validated disjoint, but chained coverage is still folded).
    ///
    /// This is the *pure* partition query the disconnect plane routes on:
    /// it inspects only the declarative plan, so hold-vs-degrade decisions
    /// stay byte-identical across shard and thread counts.
    pub fn partition_until(&self, t_secs: f64) -> Option<f64> {
        let mut release: Option<f64> = None;
        loop {
            let t = release.unwrap_or(t_secs);
            let next = self
                .partitions
                .iter()
                .filter(|p| t >= p.from_secs && t < p.until_secs)
                .map(|p| p.until_secs)
                .fold(None::<f64>, |acc, u| Some(acc.map_or(u, |a| a.max(u))));
            match next {
                Some(u) if Some(u) != release => release = Some(u),
                _ => return release,
            }
        }
    }
}

/// One device's WiFi link down over `[from_secs, until_secs)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkOutage {
    /// Device whose uplink disconnects.
    pub device: u32,
    /// Window start, seconds from run start.
    pub from_secs: f64,
    /// Window end (reconnect), seconds from run start.
    pub until_secs: f64,
}

/// A whole-segment wireless partition over `[from_secs, until_secs)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Partition {
    /// Window start, seconds from run start.
    pub from_secs: f64,
    /// Window end (heal), seconds from run start.
    pub until_secs: f64,
}

/// A scheduled cloud-server crash: the server drops out at `at_secs`,
/// loses every in-flight invocation (they are rescheduled), and rejoins
/// the cluster `down_secs` later.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerCrash {
    /// Index of the server to crash.
    pub server: u32,
    /// Crash instant, seconds from run start.
    pub at_secs: f64,
    /// How long the server stays down.
    pub down_secs: f64,
}

/// Function-level failure process plus the policy that masks it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FunctionFaults {
    /// Per-attempt failure probability. `None` keeps the platform's
    /// calibrated fault rate; `Some(r)` overrides it.
    pub fault_rate: Option<f64>,
    /// Retry/timeout/backoff policy applied to every invocation.
    pub retry: RetryPolicy,
}

impl FunctionFaults {
    /// `true` if any function knob deviates from the inert default.
    pub fn is_active(&self) -> bool {
        self.fault_rate.is_some() || self.retry != RetryPolicy::default()
    }
}

/// Retry/timeout/exponential-backoff policy for failed function attempts.
///
/// The default reproduces the repo's historical behaviour exactly: up to
/// 6 attempts (5 respawns), no timeout, no backoff pause, and the final
/// attempt always succeeds ("OpenWhisk retries until the function
/// completes"). Any run using the default policy draws the same RNG
/// sequence as before this policy existed.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Maximum attempts per invocation (first try + retries).
    pub max_attempts: u32,
    /// Kill an attempt whose execution would exceed this budget and
    /// retry it (`None` = attempts run to completion).
    pub timeout: Option<SimDuration>,
    /// Pause before the first retry.
    pub backoff_base: SimDuration,
    /// Multiplier applied to the pause after every retry (>= 1).
    pub backoff_factor: f64,
    /// Upper bound on the backoff pause.
    pub backoff_max: SimDuration,
    /// If `true`, an invocation whose final attempt also faults is
    /// reported as failed (`Outcome::Failed`) instead of being forced to
    /// succeed; the task that spawned it counts as lost.
    pub give_up: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            timeout: None,
            backoff_base: SimDuration::ZERO,
            backoff_factor: 2.0,
            backoff_max: SimDuration::from_secs(10),
            give_up: false,
        }
    }
}

impl RetryPolicy {
    /// A policy that retries at most `max_attempts` times and gives up
    /// afterwards, with exponential backoff starting at `backoff_base`.
    pub fn bounded(max_attempts: u32, backoff_base: SimDuration) -> Self {
        RetryPolicy {
            max_attempts,
            backoff_base,
            give_up: true,
            ..Self::default()
        }
    }

    /// The pause to insert before retry number `retry` (0-based).
    ///
    /// Closed form with saturation: `min(base · factor^retry,
    /// backoff_max)`. The exponent is computed in `f64`, so a huge
    /// `backoff_factor` or retry count overflows to `+inf` and saturates
    /// cleanly at `backoff_max` instead of looping `retry` times. Retry 0
    /// returns the base unclamped, matching the historical loop.
    pub fn backoff(&self, retry: u32) -> SimDuration {
        if self.backoff_base == SimDuration::ZERO {
            return SimDuration::ZERO;
        }
        if retry == 0 {
            return self.backoff_base;
        }
        let scale = self.backoff_factor.powf(retry as f64);
        self.backoff_base.mul_f64(scale).min(self.backoff_max)
    }

    /// What the policy does about attempt failure number `respawns`
    /// (0-based count of respawns already performed).
    ///
    /// This is the pure decision kernel shared by the DES cluster loop
    /// and the model checker: given how many respawns happened so far, a
    /// faulted attempt either retries (with the matching backoff pause),
    /// gives up, or — for unbounded policies reproducing the historical
    /// "OpenWhisk retries until completion" semantics — forces the final
    /// attempt to succeed.
    pub fn on_fault(&self, respawns: u32) -> RetryDecision {
        if respawns + 1 < self.max_attempts {
            RetryDecision::Retry {
                backoff: self.backoff(respawns),
            }
        } else if self.give_up {
            RetryDecision::GiveUp
        } else {
            RetryDecision::ForceSuccess
        }
    }
}

/// Outcome of [`RetryPolicy::on_fault`] for one faulted attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RetryDecision {
    /// Respawn the attempt after pausing for `backoff`.
    Retry {
        /// Pause to insert before the respawn.
        backoff: SimDuration,
    },
    /// Attempts are exhausted and the policy is bounded: report failure.
    GiveUp,
    /// Attempts are exhausted but the policy is unbounded: the final
    /// attempt is forced to succeed (historical OpenWhisk semantics).
    ForceSuccess,
}

/// Device-fleet and controller failures.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceFaults {
    /// Mean time between failures per device (exponential). Failure
    /// times are drawn once per device from the dedicated fault lane and
    /// merged with the scripted `fail_device` schedule.
    pub mtbf_secs: Option<f64>,
    /// Kill the primary controller at this instant; the backup takes
    /// over after [`DETECTION_WINDOW`] plus `controller_takeover_secs`.
    pub controller_failover_at_secs: Option<f64>,
    /// Warm-standby takeover time once the failure is detected (state
    /// re-sync + scheduler restart).
    pub controller_takeover_secs: f64,
}

impl Default for DeviceFaults {
    fn default() -> Self {
        DeviceFaults {
            mtbf_secs: None,
            controller_failover_at_secs: None,
            controller_takeover_secs: 0.5,
        }
    }
}

impl DeviceFaults {
    /// `true` if any device knob deviates from the inert default.
    pub fn is_active(&self) -> bool {
        self.mtbf_secs.is_some() || self.controller_failover_at_secs.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let plan = FaultPlan::default();
        assert!(!plan.is_active());
        assert!(!plan.net.is_active());
        assert!(!plan.functions.is_active());
        assert!(!plan.devices.is_active());
        assert!(plan.validate(1, 1).is_ok());
    }

    #[test]
    fn builders_activate_their_layer() {
        assert!(FaultPlan::default().packet_loss(0.01).net.is_active());
        assert!(FaultPlan::default().bandwidth_factor(0.5).net.is_active());
        assert!(FaultPlan::default()
            .link_outage(0, 1.0, 2.0)
            .net
            .is_active());
        assert!(FaultPlan::default().partition(1.0, 2.0).net.is_active());
        assert!(FaultPlan::default()
            .function_fault_rate(0.1)
            .functions
            .is_active());
        assert!(FaultPlan::default()
            .retry(RetryPolicy::bounded(3, SimDuration::ZERO))
            .functions
            .is_active());
        assert!(FaultPlan::default().device_mtbf(100.0).devices.is_active());
        assert!(FaultPlan::default()
            .controller_failover(10.0)
            .devices
            .is_active());
        assert!(FaultPlan::default().server_crash(0, 1.0, 1.0).is_active());
        assert!(FaultPlan::default()
            .slo(SimDuration::from_secs(1))
            .is_active());
    }

    #[test]
    fn pure_bandwidth_degradation_needs_no_per_transfer_pass() {
        let plan = FaultPlan::default().bandwidth_factor(0.5);
        assert!(plan.net.is_active());
        assert!(!plan.net.per_transfer());
        assert!(FaultPlan::default().packet_loss(0.01).net.per_transfer());
    }

    #[test]
    fn validate_rejects_bad_knobs() {
        let fleet = |p: FaultPlan| p.validate(8, 4);
        assert!(fleet(FaultPlan::default().packet_loss(1.5)).is_err());
        assert!(fleet(FaultPlan::default().bandwidth_factor(0.0)).is_err());
        assert!(fleet(FaultPlan::default().link_outage(8, 1.0, 2.0)).is_err());
        assert!(fleet(FaultPlan::default().link_outage(0, 2.0, 1.0)).is_err());
        assert!(fleet(FaultPlan::default().partition(-1.0, 2.0)).is_err());
        assert!(fleet(FaultPlan::default().server_crash(4, 1.0, 1.0)).is_err());
        assert!(fleet(FaultPlan::default().server_crash(0, 1.0, 0.0)).is_err());
        assert!(fleet(FaultPlan::default().function_fault_rate(-0.1)).is_err());
        assert!(fleet(FaultPlan::default().device_mtbf(0.0)).is_err());
        assert!(fleet(FaultPlan::default().controller_failover(-1.0)).is_err());
        let mut bad_retry = FaultPlan::default();
        bad_retry.functions.retry.max_attempts = 0;
        assert!(fleet(bad_retry).is_err());
    }

    #[test]
    fn validate_rejects_degenerate_windows_with_typed_errors() {
        let fleet = |p: FaultPlan| p.validate(8, 4);
        // NaN start, NaN end, negative start, inverted, empty.
        for (from, until) in [
            (f64::NAN, 2.0),
            (1.0, f64::NAN),
            (f64::INFINITY, f64::INFINITY),
            (-0.5, 2.0),
            (3.0, 2.0),
            (2.0, 2.0),
        ] {
            // matches! rather than assert_eq: NaN payloads never compare
            // equal, but the variant and window family must be right.
            assert!(
                matches!(
                    fleet(FaultPlan::default().partition(from, until)),
                    Err(FaultPlanError::InvalidWindow {
                        name: "partition",
                        ..
                    })
                ),
                "partition [{from}, {until}) must be rejected"
            );
            assert!(
                matches!(
                    fleet(FaultPlan::default().link_outage(0, from, until)),
                    Err(FaultPlanError::InvalidWindow {
                        name: "link outage",
                        ..
                    })
                ),
                "link outage [{from}, {until}) must be rejected"
            );
        }
        // NaN comparisons are false, so a NaN window must not slip past
        // the ordering check either.
        assert!(fleet(FaultPlan::default().partition(f64::NAN, f64::NAN)).is_err());
    }

    #[test]
    fn validate_rejects_overlapping_partitions() {
        let fleet = |p: FaultPlan| p.validate(8, 4);
        // Strict overlap, in either declaration order.
        assert_eq!(
            fleet(FaultPlan::default().partition(1.0, 5.0).partition(4.0, 8.0)),
            Err(FaultPlanError::OverlappingPartitions {
                first_until: 5.0,
                second_from: 4.0,
            })
        );
        assert!(fleet(FaultPlan::default().partition(4.0, 8.0).partition(1.0, 5.0)).is_err());
        // Full containment.
        assert!(fleet(
            FaultPlan::default()
                .partition(1.0, 10.0)
                .partition(3.0, 4.0)
        )
        .is_err());
        // Back-to-back windows sharing a boundary instant are disjoint
        // (half-open intervals): accepted.
        assert!(fleet(FaultPlan::default().partition(1.0, 5.0).partition(5.0, 8.0)).is_ok());
        // Disjoint with a gap: accepted.
        assert!(fleet(
            FaultPlan::default()
                .partition(1.0, 2.0)
                .partition(30.0, 40.0)
        )
        .is_ok());
    }

    #[test]
    fn validate_rejects_nan_backoff_and_zero_hold_bound() {
        let fleet = |p: FaultPlan| p.validate(8, 4);
        let mut nan_backoff = FaultPlan::default();
        nan_backoff.functions.retry.backoff_factor = f64::NAN;
        assert!(matches!(
            fleet(nan_backoff),
            Err(FaultPlanError::InvalidBackoffFactor { value }) if value.is_nan()
        ));
        assert_eq!(
            fleet(FaultPlan::default().partition_hold_bound(0)),
            Err(FaultPlanError::ZeroHoldBound)
        );
        assert!(fleet(FaultPlan::default().partition_hold_bound(1)).is_ok());
        // A hold bound alone arms the net plane (the fabric must account
        // holds) but needs no per-transfer fault pass by itself.
        let plan = FaultPlan::default().partition_hold_bound(16);
        assert!(plan.net.is_active());
        assert!(!plan.net.per_transfer());
    }

    #[test]
    fn partition_until_folds_chained_windows() {
        let net = FaultPlan::default()
            .partition(10.0, 20.0)
            .partition(20.0, 25.0)
            .partition(40.0, 50.0)
            .net;
        assert_eq!(net.partition_until(5.0), None);
        // Covered by the first window; the chain extends through the
        // back-to-back second window.
        assert_eq!(net.partition_until(10.0), Some(25.0));
        assert_eq!(net.partition_until(19.9), Some(25.0));
        assert_eq!(net.partition_until(20.0), Some(25.0));
        // Heal instant itself is connected (half-open windows).
        assert_eq!(net.partition_until(25.0), None);
        assert_eq!(net.partition_until(45.0), Some(50.0));
        assert_eq!(NetFaults::default().partition_until(0.0), None);
    }

    #[test]
    fn default_retry_matches_legacy_respawn_limit() {
        let rp = RetryPolicy::default();
        // Legacy loop allowed `respawns < 5`, i.e. 6 total attempts.
        assert_eq!(rp.max_attempts, 6);
        assert!(!rp.give_up);
        assert_eq!(rp.timeout, None);
        assert_eq!(rp.backoff(0), SimDuration::ZERO);
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let rp = RetryPolicy {
            backoff_base: SimDuration::from_millis(100),
            backoff_factor: 2.0,
            backoff_max: SimDuration::from_millis(500),
            ..RetryPolicy::default()
        };
        assert_eq!(rp.backoff(0), SimDuration::from_millis(100));
        assert_eq!(rp.backoff(1), SimDuration::from_millis(200));
        assert_eq!(rp.backoff(2), SimDuration::from_millis(400));
        assert_eq!(rp.backoff(3), SimDuration::from_millis(500));
        assert_eq!(rp.backoff(10), SimDuration::from_millis(500));
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        let rp = RetryPolicy {
            backoff_base: SimDuration::from_secs(1),
            backoff_factor: 1e300,
            backoff_max: SimDuration::from_secs(30),
            ..RetryPolicy::default()
        };
        // factor^retry overflows f64 to +inf: the pause must clamp at
        // backoff_max, not wrap or panic.
        assert_eq!(rp.backoff(1), SimDuration::from_secs(30));
        assert_eq!(rp.backoff(2), SimDuration::from_secs(30));
        assert_eq!(rp.backoff(u32::MAX), SimDuration::from_secs(30));
    }

    #[test]
    fn on_fault_mirrors_the_legacy_loop_conditions() {
        // Unbounded default: retries while respawns+1 < max_attempts,
        // then forces the final attempt to succeed.
        let rp = RetryPolicy::default();
        for respawns in 0..5 {
            assert_eq!(
                rp.on_fault(respawns),
                RetryDecision::Retry {
                    backoff: SimDuration::ZERO
                }
            );
        }
        assert_eq!(rp.on_fault(5), RetryDecision::ForceSuccess);
        assert_eq!(rp.on_fault(99), RetryDecision::ForceSuccess);

        // Bounded: same retry window, then a real give-up.
        let rp = RetryPolicy::bounded(3, SimDuration::from_millis(100));
        assert_eq!(
            rp.on_fault(0),
            RetryDecision::Retry {
                backoff: SimDuration::from_millis(100)
            }
        );
        assert_eq!(
            rp.on_fault(1),
            RetryDecision::Retry {
                backoff: SimDuration::from_millis(200)
            }
        );
        assert_eq!(rp.on_fault(2), RetryDecision::GiveUp);
    }

    #[test]
    fn backoff_with_unit_factor_stays_flat() {
        let rp = RetryPolicy {
            backoff_base: SimDuration::from_millis(250),
            backoff_factor: 1.0,
            backoff_max: SimDuration::from_secs(10),
            ..RetryPolicy::default()
        };
        for retry in [0, 1, 7, 1_000_000] {
            assert_eq!(rp.backoff(retry), SimDuration::from_millis(250));
        }
    }

    #[test]
    fn backoff_zero_retry_returns_base_unclamped() {
        // Historical quirk preserved by the closed form: the cap applies
        // from the first retry onward, never to the base pause itself.
        let rp = RetryPolicy {
            backoff_base: SimDuration::from_secs(60),
            backoff_factor: 2.0,
            backoff_max: SimDuration::from_secs(10),
            ..RetryPolicy::default()
        };
        assert_eq!(rp.backoff(0), SimDuration::from_secs(60));
        assert_eq!(rp.backoff(1), SimDuration::from_secs(10));
    }
}

//! Unified, deterministic fault-injection plane.
//!
//! The paper's fault-tolerance story (Sec. 4.6, Fig. 5c, Fig. 10) spans
//! every layer of the stack: failed functions respawn, crashed servers
//! lose their in-flight invocations, silent drones are detected by missed
//! heartbeats and their area is repartitioned, and a backup controller
//! takes over when the primary dies. A [`FaultPlan`] describes all of
//! those disturbances — scheduled ones (a server crash at t=30 s) and
//! stochastic ones (5 % packet loss, exponential device MTBF) — in one
//! declarative value that experiments attach via
//! `ExperimentConfig::faults`.
//!
//! ## Determinism contract
//!
//! Every stochastic draw a fault makes comes from a *dedicated lane* of
//! the replicate's seed chain (`RngForge::child("faults")`), never from
//! the streams the fault-free simulation uses. Two consequences:
//!
//! 1. a run with an inert plan ([`FaultPlan::default`]) is **bit-for-bit
//!    identical** to a run with no plan at all — no fault RNG is even
//!    created, so no stream is perturbed;
//! 2. changing a fault knob (say the packet-loss rate) never reshuffles
//!    the workload's own randomness, so degradation curves compare the
//!    *same* task sample under different disturbance levels.
//!
//! The consumers live in their own crates — `net::fabric` applies
//! [`NetFaults`], `faas::cluster` applies [`ServerCrash`] schedules and
//! the [`RetryPolicy`], and `core::mission`/`core::controller` apply
//! [`DeviceFaults`] — but the vocabulary is defined here so a plan can be
//! validated and threaded as one value.

use crate::time::SimDuration;

/// Trace category used by every fault-plane event
/// (`fault/injected`, `fault/detected`, `fault/recovered`).
pub const TRACE_CAT: &str = "fault";
/// Trace event name emitted at the instant a fault strikes.
pub const EV_INJECTED: &str = "injected";
/// Trace event name emitted when the system *notices* the fault.
pub const EV_DETECTED: &str = "detected";
/// Trace event name emitted when service is restored.
pub const EV_RECOVERED: &str = "recovered";

/// The paper's heartbeat-based failure-detection window: a device (or the
/// primary controller) is declared dead after 3 s of missed heartbeats
/// (Sec. 4.6).
pub const DETECTION_WINDOW: SimDuration = SimDuration::from_secs(3);

/// A declarative description of every disturbance injected into one run.
///
/// The default plan is **inert**: [`FaultPlan::is_active`] returns
/// `false` and every consumer skips its fault path entirely, leaving the
/// simulation byte-identical to one that never heard of faults.
///
/// # Examples
///
/// ```rust
/// use hivemind_sim::faults::FaultPlan;
///
/// let plan = FaultPlan::default()
///     .packet_loss(0.05)
///     .server_crash(2, 30.0, 15.0)
///     .function_fault_rate(0.10)
///     .device_mtbf(600.0);
/// assert!(plan.is_active());
/// assert!(plan.validate(16, 4).is_ok());
/// assert!(!FaultPlan::default().is_active());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Network-layer disturbances (loss, degradation, outages, partitions).
    pub net: NetFaults,
    /// Scheduled cloud-server crash/recover windows.
    pub servers: Vec<ServerCrash>,
    /// Function-level failure process and the retry policy that masks it.
    pub functions: FunctionFaults,
    /// Device-fleet and controller failures.
    pub devices: DeviceFaults,
    /// Optional end-to-end latency SLO; when set, the recovery metrics
    /// report the fraction of completed tasks that violated it.
    pub slo: Option<SimDuration>,
}

impl FaultPlan {
    /// `true` if any knob deviates from the inert default.
    pub fn is_active(&self) -> bool {
        self.net.is_active()
            || !self.servers.is_empty()
            || self.functions.is_active()
            || self.devices.is_active()
            || self.slo.is_some()
    }

    /// Sets the per-transfer wireless packet-loss probability.
    pub fn packet_loss(mut self, p: f64) -> Self {
        self.net.packet_loss = p;
        self
    }

    /// Scales wireless bandwidth by `factor` (e.g. `0.5` halves it).
    pub fn bandwidth_factor(mut self, factor: f64) -> Self {
        self.net.bandwidth_factor = factor;
        self
    }

    /// Takes one device's WiFi link down over `[from_secs, until_secs)`.
    pub fn link_outage(mut self, device: u32, from_secs: f64, until_secs: f64) -> Self {
        self.net.disconnects.push(LinkOutage {
            device,
            from_secs,
            until_secs,
        });
        self
    }

    /// Partitions the whole wireless segment over `[from_secs, until_secs)`.
    pub fn partition(mut self, from_secs: f64, until_secs: f64) -> Self {
        self.net.partitions.push(Partition {
            from_secs,
            until_secs,
        });
        self
    }

    /// Crashes cloud server `server` at `at_secs` for `down_secs` seconds.
    pub fn server_crash(mut self, server: u32, at_secs: f64, down_secs: f64) -> Self {
        self.servers.push(ServerCrash {
            server,
            at_secs,
            down_secs,
        });
        self
    }

    /// Sets the per-attempt function failure probability (overrides the
    /// platform's calibrated `fault_rate`).
    pub fn function_fault_rate(mut self, rate: f64) -> Self {
        self.functions.fault_rate = Some(rate);
        self
    }

    /// Replaces the function retry policy.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.functions.retry = policy;
        self
    }

    /// Enables stochastic device failures with the given mean time
    /// between failures (exponential, per device).
    pub fn device_mtbf(mut self, mtbf_secs: f64) -> Self {
        self.devices.mtbf_secs = Some(mtbf_secs);
        self
    }

    /// Kills the primary controller at `at_secs`; the backup takes over
    /// after the 3 s detection window plus the configured takeover time.
    pub fn controller_failover(mut self, at_secs: f64) -> Self {
        self.devices.controller_failover_at_secs = Some(at_secs);
        self
    }

    /// Sets the end-to-end latency SLO used for the violation fraction.
    pub fn slo(mut self, slo: SimDuration) -> Self {
        self.slo = Some(slo);
        self
    }

    /// Checks every knob against the fleet shape (`devices` drones,
    /// `servers` cloud servers). Returns a human-readable description of
    /// the first problem found.
    pub fn validate(&self, devices: u32, servers: u32) -> Result<(), String> {
        let prob = |name: &str, p: f64| -> Result<(), String> {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be a probability in [0, 1], got {p}"));
            }
            Ok(())
        };
        let window = |name: &str, from: f64, until: f64| -> Result<(), String> {
            if !(from.is_finite() && until.is_finite()) || from < 0.0 || until <= from {
                return Err(format!(
                    "{name} window must satisfy 0 <= from < until, got [{from}, {until})"
                ));
            }
            Ok(())
        };
        prob("net.packet_loss", self.net.packet_loss)?;
        if !(self.net.bandwidth_factor > 0.0 && self.net.bandwidth_factor <= 1.0) {
            return Err(format!(
                "net.bandwidth_factor must be in (0, 1], got {}",
                self.net.bandwidth_factor
            ));
        }
        for o in &self.net.disconnects {
            if o.device >= devices {
                return Err(format!(
                    "link outage targets device {} but the fleet has {devices}",
                    o.device
                ));
            }
            window("link outage", o.from_secs, o.until_secs)?;
        }
        for p in &self.net.partitions {
            window("partition", p.from_secs, p.until_secs)?;
        }
        for c in &self.servers {
            if c.server >= servers {
                return Err(format!(
                    "server crash targets server {} but the cluster has {servers}",
                    c.server
                ));
            }
            let at_ok = c.at_secs.is_finite() && c.at_secs >= 0.0;
            let down_ok = c.down_secs.is_finite() && c.down_secs > 0.0;
            if !at_ok || !down_ok {
                return Err(format!(
                    "server crash needs at_secs >= 0 and down_secs > 0, got at {} down {}",
                    c.at_secs, c.down_secs
                ));
            }
        }
        if let Some(r) = self.functions.fault_rate {
            prob("functions.fault_rate", r)?;
        }
        let rp = &self.functions.retry;
        if rp.max_attempts == 0 {
            return Err("retry.max_attempts must be at least 1".into());
        }
        if rp.backoff_factor < 1.0 {
            return Err(format!(
                "retry.backoff_factor must be >= 1, got {}",
                rp.backoff_factor
            ));
        }
        if let Some(mtbf) = self.devices.mtbf_secs {
            // NaN-safe: a NaN MTBF must be rejected too.
            let ok = mtbf.is_finite() && mtbf > 0.0;
            if !ok {
                return Err(format!("devices.mtbf_secs must be positive, got {mtbf}"));
            }
        }
        if let Some(at) = self.devices.controller_failover_at_secs {
            if !(at.is_finite() && at >= 0.0) {
                return Err(format!(
                    "devices.controller_failover_at_secs must be >= 0, got {at}"
                ));
            }
        }
        let takeover = self.devices.controller_takeover_secs;
        let takeover_ok = takeover.is_finite() && takeover >= 0.0;
        if !takeover_ok {
            return Err(format!(
                "devices.controller_takeover_secs must be >= 0, got {}",
                self.devices.controller_takeover_secs
            ));
        }
        Ok(())
    }
}

/// Network-layer disturbances applied by `net::fabric` to transfers that
/// cross the wireless segment (wired cloud links are assumed reliable,
/// matching the paper's testbed where only the WiFi uplink is lossy).
#[derive(Debug, Clone, PartialEq)]
pub struct NetFaults {
    /// Per-transfer probability that a wireless transfer needs a
    /// retransmission round before it gets through.
    pub packet_loss: f64,
    /// Delay added per retransmission round (default 200 ms ≈ WiFi
    /// retransmit + backoff at the transport layer).
    pub retransmit: SimDuration,
    /// Multiplier on wireless bandwidth (1.0 = nominal). Applied when the
    /// topology is built, so it degrades every transfer uniformly.
    pub bandwidth_factor: f64,
    /// Per-device WiFi disconnect windows; transfers touching the device
    /// are held until the window closes (then retried).
    pub disconnects: Vec<LinkOutage>,
    /// Whole-segment partitions; every wireless transfer is held until
    /// the partition heals.
    pub partitions: Vec<Partition>,
}

impl Default for NetFaults {
    fn default() -> Self {
        NetFaults {
            packet_loss: 0.0,
            retransmit: SimDuration::from_millis(200),
            bandwidth_factor: 1.0,
            disconnects: Vec::new(),
            partitions: Vec::new(),
        }
    }
}

impl NetFaults {
    /// `true` if any network knob deviates from the inert default.
    pub fn is_active(&self) -> bool {
        self.packet_loss > 0.0
            || self.bandwidth_factor != 1.0
            || !self.disconnects.is_empty()
            || !self.partitions.is_empty()
    }

    /// `true` if the fabric needs a per-transfer fault pass (loss or
    /// hold-back windows; pure bandwidth degradation is applied once at
    /// topology build time and needs no per-transfer work).
    pub fn per_transfer(&self) -> bool {
        self.packet_loss > 0.0 || !self.disconnects.is_empty() || !self.partitions.is_empty()
    }
}

/// One device's WiFi link down over `[from_secs, until_secs)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkOutage {
    /// Device whose uplink disconnects.
    pub device: u32,
    /// Window start, seconds from run start.
    pub from_secs: f64,
    /// Window end (reconnect), seconds from run start.
    pub until_secs: f64,
}

/// A whole-segment wireless partition over `[from_secs, until_secs)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Partition {
    /// Window start, seconds from run start.
    pub from_secs: f64,
    /// Window end (heal), seconds from run start.
    pub until_secs: f64,
}

/// A scheduled cloud-server crash: the server drops out at `at_secs`,
/// loses every in-flight invocation (they are rescheduled), and rejoins
/// the cluster `down_secs` later.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerCrash {
    /// Index of the server to crash.
    pub server: u32,
    /// Crash instant, seconds from run start.
    pub at_secs: f64,
    /// How long the server stays down.
    pub down_secs: f64,
}

/// Function-level failure process plus the policy that masks it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FunctionFaults {
    /// Per-attempt failure probability. `None` keeps the platform's
    /// calibrated fault rate; `Some(r)` overrides it.
    pub fault_rate: Option<f64>,
    /// Retry/timeout/backoff policy applied to every invocation.
    pub retry: RetryPolicy,
}

impl FunctionFaults {
    /// `true` if any function knob deviates from the inert default.
    pub fn is_active(&self) -> bool {
        self.fault_rate.is_some() || self.retry != RetryPolicy::default()
    }
}

/// Retry/timeout/exponential-backoff policy for failed function attempts.
///
/// The default reproduces the repo's historical behaviour exactly: up to
/// 6 attempts (5 respawns), no timeout, no backoff pause, and the final
/// attempt always succeeds ("OpenWhisk retries until the function
/// completes"). Any run using the default policy draws the same RNG
/// sequence as before this policy existed.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Maximum attempts per invocation (first try + retries).
    pub max_attempts: u32,
    /// Kill an attempt whose execution would exceed this budget and
    /// retry it (`None` = attempts run to completion).
    pub timeout: Option<SimDuration>,
    /// Pause before the first retry.
    pub backoff_base: SimDuration,
    /// Multiplier applied to the pause after every retry (>= 1).
    pub backoff_factor: f64,
    /// Upper bound on the backoff pause.
    pub backoff_max: SimDuration,
    /// If `true`, an invocation whose final attempt also faults is
    /// reported as failed (`Outcome::Failed`) instead of being forced to
    /// succeed; the task that spawned it counts as lost.
    pub give_up: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            timeout: None,
            backoff_base: SimDuration::ZERO,
            backoff_factor: 2.0,
            backoff_max: SimDuration::from_secs(10),
            give_up: false,
        }
    }
}

impl RetryPolicy {
    /// A policy that retries at most `max_attempts` times and gives up
    /// afterwards, with exponential backoff starting at `backoff_base`.
    pub fn bounded(max_attempts: u32, backoff_base: SimDuration) -> Self {
        RetryPolicy {
            max_attempts,
            backoff_base,
            give_up: true,
            ..Self::default()
        }
    }

    /// The pause to insert before retry number `retry` (0-based).
    ///
    /// Closed form with saturation: `min(base · factor^retry,
    /// backoff_max)`. The exponent is computed in `f64`, so a huge
    /// `backoff_factor` or retry count overflows to `+inf` and saturates
    /// cleanly at `backoff_max` instead of looping `retry` times. Retry 0
    /// returns the base unclamped, matching the historical loop.
    pub fn backoff(&self, retry: u32) -> SimDuration {
        if self.backoff_base == SimDuration::ZERO {
            return SimDuration::ZERO;
        }
        if retry == 0 {
            return self.backoff_base;
        }
        let scale = self.backoff_factor.powf(retry as f64);
        self.backoff_base.mul_f64(scale).min(self.backoff_max)
    }

    /// What the policy does about attempt failure number `respawns`
    /// (0-based count of respawns already performed).
    ///
    /// This is the pure decision kernel shared by the DES cluster loop
    /// and the model checker: given how many respawns happened so far, a
    /// faulted attempt either retries (with the matching backoff pause),
    /// gives up, or — for unbounded policies reproducing the historical
    /// "OpenWhisk retries until completion" semantics — forces the final
    /// attempt to succeed.
    pub fn on_fault(&self, respawns: u32) -> RetryDecision {
        if respawns + 1 < self.max_attempts {
            RetryDecision::Retry {
                backoff: self.backoff(respawns),
            }
        } else if self.give_up {
            RetryDecision::GiveUp
        } else {
            RetryDecision::ForceSuccess
        }
    }
}

/// Outcome of [`RetryPolicy::on_fault`] for one faulted attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RetryDecision {
    /// Respawn the attempt after pausing for `backoff`.
    Retry {
        /// Pause to insert before the respawn.
        backoff: SimDuration,
    },
    /// Attempts are exhausted and the policy is bounded: report failure.
    GiveUp,
    /// Attempts are exhausted but the policy is unbounded: the final
    /// attempt is forced to succeed (historical OpenWhisk semantics).
    ForceSuccess,
}

/// Device-fleet and controller failures.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceFaults {
    /// Mean time between failures per device (exponential). Failure
    /// times are drawn once per device from the dedicated fault lane and
    /// merged with the scripted `fail_device` schedule.
    pub mtbf_secs: Option<f64>,
    /// Kill the primary controller at this instant; the backup takes
    /// over after [`DETECTION_WINDOW`] plus `controller_takeover_secs`.
    pub controller_failover_at_secs: Option<f64>,
    /// Warm-standby takeover time once the failure is detected (state
    /// re-sync + scheduler restart).
    pub controller_takeover_secs: f64,
}

impl Default for DeviceFaults {
    fn default() -> Self {
        DeviceFaults {
            mtbf_secs: None,
            controller_failover_at_secs: None,
            controller_takeover_secs: 0.5,
        }
    }
}

impl DeviceFaults {
    /// `true` if any device knob deviates from the inert default.
    pub fn is_active(&self) -> bool {
        self.mtbf_secs.is_some() || self.controller_failover_at_secs.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let plan = FaultPlan::default();
        assert!(!plan.is_active());
        assert!(!plan.net.is_active());
        assert!(!plan.functions.is_active());
        assert!(!plan.devices.is_active());
        assert!(plan.validate(1, 1).is_ok());
    }

    #[test]
    fn builders_activate_their_layer() {
        assert!(FaultPlan::default().packet_loss(0.01).net.is_active());
        assert!(FaultPlan::default().bandwidth_factor(0.5).net.is_active());
        assert!(FaultPlan::default()
            .link_outage(0, 1.0, 2.0)
            .net
            .is_active());
        assert!(FaultPlan::default().partition(1.0, 2.0).net.is_active());
        assert!(FaultPlan::default()
            .function_fault_rate(0.1)
            .functions
            .is_active());
        assert!(FaultPlan::default()
            .retry(RetryPolicy::bounded(3, SimDuration::ZERO))
            .functions
            .is_active());
        assert!(FaultPlan::default().device_mtbf(100.0).devices.is_active());
        assert!(FaultPlan::default()
            .controller_failover(10.0)
            .devices
            .is_active());
        assert!(FaultPlan::default().server_crash(0, 1.0, 1.0).is_active());
        assert!(FaultPlan::default()
            .slo(SimDuration::from_secs(1))
            .is_active());
    }

    #[test]
    fn pure_bandwidth_degradation_needs_no_per_transfer_pass() {
        let plan = FaultPlan::default().bandwidth_factor(0.5);
        assert!(plan.net.is_active());
        assert!(!plan.net.per_transfer());
        assert!(FaultPlan::default().packet_loss(0.01).net.per_transfer());
    }

    #[test]
    fn validate_rejects_bad_knobs() {
        let fleet = |p: FaultPlan| p.validate(8, 4);
        assert!(fleet(FaultPlan::default().packet_loss(1.5)).is_err());
        assert!(fleet(FaultPlan::default().bandwidth_factor(0.0)).is_err());
        assert!(fleet(FaultPlan::default().link_outage(8, 1.0, 2.0)).is_err());
        assert!(fleet(FaultPlan::default().link_outage(0, 2.0, 1.0)).is_err());
        assert!(fleet(FaultPlan::default().partition(-1.0, 2.0)).is_err());
        assert!(fleet(FaultPlan::default().server_crash(4, 1.0, 1.0)).is_err());
        assert!(fleet(FaultPlan::default().server_crash(0, 1.0, 0.0)).is_err());
        assert!(fleet(FaultPlan::default().function_fault_rate(-0.1)).is_err());
        assert!(fleet(FaultPlan::default().device_mtbf(0.0)).is_err());
        assert!(fleet(FaultPlan::default().controller_failover(-1.0)).is_err());
        let mut bad_retry = FaultPlan::default();
        bad_retry.functions.retry.max_attempts = 0;
        assert!(fleet(bad_retry).is_err());
    }

    #[test]
    fn default_retry_matches_legacy_respawn_limit() {
        let rp = RetryPolicy::default();
        // Legacy loop allowed `respawns < 5`, i.e. 6 total attempts.
        assert_eq!(rp.max_attempts, 6);
        assert!(!rp.give_up);
        assert_eq!(rp.timeout, None);
        assert_eq!(rp.backoff(0), SimDuration::ZERO);
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let rp = RetryPolicy {
            backoff_base: SimDuration::from_millis(100),
            backoff_factor: 2.0,
            backoff_max: SimDuration::from_millis(500),
            ..RetryPolicy::default()
        };
        assert_eq!(rp.backoff(0), SimDuration::from_millis(100));
        assert_eq!(rp.backoff(1), SimDuration::from_millis(200));
        assert_eq!(rp.backoff(2), SimDuration::from_millis(400));
        assert_eq!(rp.backoff(3), SimDuration::from_millis(500));
        assert_eq!(rp.backoff(10), SimDuration::from_millis(500));
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        let rp = RetryPolicy {
            backoff_base: SimDuration::from_secs(1),
            backoff_factor: 1e300,
            backoff_max: SimDuration::from_secs(30),
            ..RetryPolicy::default()
        };
        // factor^retry overflows f64 to +inf: the pause must clamp at
        // backoff_max, not wrap or panic.
        assert_eq!(rp.backoff(1), SimDuration::from_secs(30));
        assert_eq!(rp.backoff(2), SimDuration::from_secs(30));
        assert_eq!(rp.backoff(u32::MAX), SimDuration::from_secs(30));
    }

    #[test]
    fn on_fault_mirrors_the_legacy_loop_conditions() {
        // Unbounded default: retries while respawns+1 < max_attempts,
        // then forces the final attempt to succeed.
        let rp = RetryPolicy::default();
        for respawns in 0..5 {
            assert_eq!(
                rp.on_fault(respawns),
                RetryDecision::Retry {
                    backoff: SimDuration::ZERO
                }
            );
        }
        assert_eq!(rp.on_fault(5), RetryDecision::ForceSuccess);
        assert_eq!(rp.on_fault(99), RetryDecision::ForceSuccess);

        // Bounded: same retry window, then a real give-up.
        let rp = RetryPolicy::bounded(3, SimDuration::from_millis(100));
        assert_eq!(
            rp.on_fault(0),
            RetryDecision::Retry {
                backoff: SimDuration::from_millis(100)
            }
        );
        assert_eq!(
            rp.on_fault(1),
            RetryDecision::Retry {
                backoff: SimDuration::from_millis(200)
            }
        );
        assert_eq!(rp.on_fault(2), RetryDecision::GiveUp);
    }

    #[test]
    fn backoff_with_unit_factor_stays_flat() {
        let rp = RetryPolicy {
            backoff_base: SimDuration::from_millis(250),
            backoff_factor: 1.0,
            backoff_max: SimDuration::from_secs(10),
            ..RetryPolicy::default()
        };
        for retry in [0, 1, 7, 1_000_000] {
            assert_eq!(rp.backoff(retry), SimDuration::from_millis(250));
        }
    }

    #[test]
    fn backoff_zero_retry_returns_base_unclamped() {
        // Historical quirk preserved by the closed form: the cap applies
        // from the first retry onward, never to the base pause itself.
        let rp = RetryPolicy {
            backoff_base: SimDuration::from_secs(60),
            backoff_factor: 2.0,
            backoff_max: SimDuration::from_secs(10),
            ..RetryPolicy::default()
        };
        assert_eq!(rp.backoff(0), SimDuration::from_secs(60));
        assert_eq!(rp.backoff(1), SimDuration::from_secs(10));
    }
}

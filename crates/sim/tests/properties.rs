//! Property-based tests for the simulation kernel.

use hivemind_sim::dist::Dist;
use hivemind_sim::engine::{Context, Engine, Model};
use hivemind_sim::mc::BreakerMonitor;
use hivemind_sim::overload::{
    BreakerConfig, BreakerDecision, BreakerEvent, BreakerState, CircuitBreaker,
};
use hivemind_sim::rng::RngForge;
use hivemind_sim::stats::{Histogram, Meter, Summary};
use hivemind_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

/// Records the firing order of opaque event ids.
struct Recorder {
    fired: Vec<(SimTime, u64)>,
}
impl Model for Recorder {
    type Event = u64;
    fn handle(&mut self, ctx: &mut Context<u64>, ev: u64) {
        self.fired.push((ctx.now(), ev));
    }
}

proptest! {
    /// Events always fire in nondecreasing time order, and same-time
    /// events fire in insertion order, for any schedule.
    #[test]
    fn engine_fires_in_order(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut engine = Engine::new(Recorder { fired: vec![] });
        for (i, &t) in times.iter().enumerate() {
            engine.schedule_at(SimTime::from_nanos(t), i as u64);
        }
        engine.run_to_completion();
        let fired = &engine.model().fired;
        prop_assert_eq!(fired.len(), times.len());
        for pair in fired.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0);
            if pair[0].0 == pair[1].0 {
                prop_assert!(pair[0].1 < pair[1].1, "FIFO among ties");
            }
        }
        // Every event fires exactly at its scheduled time.
        for &(at, id) in fired {
            prop_assert_eq!(at.as_nanos(), times[id as usize]);
        }
    }

    /// A deadline-split run fires exactly the same events as a single run.
    #[test]
    fn run_until_is_composable(
        times in prop::collection::vec(0u64..1_000_000, 1..100),
        split in 0u64..1_000_000,
    ) {
        let run_split = {
            let mut engine = Engine::new(Recorder { fired: vec![] });
            for (i, &t) in times.iter().enumerate() {
                engine.schedule_at(SimTime::from_nanos(t), i as u64);
            }
            engine.run_until(SimTime::from_nanos(split), u64::MAX);
            engine.run_to_completion();
            engine.into_model().fired
        };
        let run_whole = {
            let mut engine = Engine::new(Recorder { fired: vec![] });
            for (i, &t) in times.iter().enumerate() {
                engine.schedule_at(SimTime::from_nanos(t), i as u64);
            }
            engine.run_to_completion();
            engine.into_model().fired
        };
        prop_assert_eq!(run_split, run_whole);
    }

    /// Meter totals equal the sum of window rates × window length,
    /// regardless of how adds are spread.
    #[test]
    fn meter_conserves_mass(adds in prop::collection::vec((0u64..120, 0.0f64..1e6), 1..100)) {
        let mut adds = adds;
        adds.sort_by_key(|&(t, _)| t);
        let mut meter = Meter::new(SimDuration::from_secs(1));
        let mut expected = 0.0;
        for &(t, amount) in &adds {
            meter.add(SimTime::from_secs(t), amount);
            expected += amount;
        }
        meter.finish(SimTime::from_secs(121));
        let windowed: f64 = meter.rates_per_sec().iter().sum();
        prop_assert!((windowed - expected).abs() < 1e-6 * expected.max(1.0));
        prop_assert!((meter.total() - expected).abs() < 1e-6 * expected.max(1.0));
    }

    /// Histograms bin every sample exactly once.
    #[test]
    fn histogram_conserves_samples(
        samples in prop::collection::vec(-1e6f64..1e6, 1..300),
        bins in 1usize..40,
    ) {
        let h = Histogram::from_samples(&samples, bins);
        prop_assert_eq!(h.total(), samples.len() as u64);
        prop_assert_eq!(h.counts().len(), bins);
    }

    /// Merging summaries equals recording everything into one.
    #[test]
    fn summary_merge_is_concat(
        a in prop::collection::vec(0.0f64..1e6, 0..100),
        b in prop::collection::vec(0.0f64..1e6, 1..100),
    ) {
        let mut merged: Summary = a.iter().copied().collect();
        let other: Summary = b.iter().copied().collect();
        merged.merge(&other);
        let direct: Summary = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged.len(), direct.len());
        prop_assert!((merged.mean() - direct.mean()).abs() < 1e-9 * direct.mean().max(1.0));
        prop_assert_eq!(merged.median(), direct.median());
        prop_assert_eq!(merged.p99(), direct.p99());
    }

    /// Scaling a distribution scales its mean linearly and never breaks
    /// sampling.
    #[test]
    fn dist_scaling_is_linear(
        median in 1e-6f64..100.0,
        sigma in 0.0f64..1.5,
        factor in 0.01f64..100.0,
    ) {
        let d = Dist::lognormal_median_sigma(median, sigma);
        let scaled = d.scaled(factor);
        prop_assert!((scaled.mean_secs() - d.mean_secs() * factor).abs()
            < 1e-9 * (d.mean_secs() * factor).max(1e-12));
        let mut rng = RngForge::new(1).stream("prop");
        for _ in 0..20 {
            prop_assert!(scaled.sample(&mut rng) >= SimDuration::ZERO);
        }
    }

    /// Named streams are reproducible and index-decorrelated.
    #[test]
    fn rng_streams_reproducible(seed in 0u64..u64::MAX, idx in 0u64..10_000) {
        use rand::Rng;
        let forge = RngForge::new(seed);
        let a: u64 = forge.indexed_stream("x", idx).gen();
        let b: u64 = forge.indexed_stream("x", idx).gen();
        prop_assert_eq!(a, b);
        let c: u64 = forge.indexed_stream("x", idx.wrapping_add(1)).gen();
        prop_assert_ne!(a, c);
    }

    /// Merging per-replicate summaries in any order yields identical
    /// order statistics — the runner may hand back replicate summaries
    /// in replicate order, but nothing downstream may depend on it.
    #[test]
    fn summary_merge_is_permutation_invariant(
        chunks in prop::collection::vec(
            prop::collection::vec(0.0f64..1e6, 1..40), 2..8),
        seed in 0u64..u64::MAX,
    ) {
        use rand::Rng;
        let summaries: Vec<Summary> =
            chunks.iter().map(|c| c.iter().copied().collect()).collect();

        let merge_all = |order: &[usize]| {
            let mut out = Summary::new();
            for &i in order {
                out.merge(&summaries[i]);
            }
            out
        };
        let natural: Vec<usize> = (0..summaries.len()).collect();
        let mut shuffled = natural.clone();
        let mut rng = RngForge::new(seed).stream("perm");
        for i in (1..shuffled.len()).rev() {
            shuffled.swap(i, rng.gen_range(0..=i));
        }

        let a = merge_all(&natural);
        let b = merge_all(&shuffled);
        prop_assert_eq!(a.len(), b.len());
        prop_assert!((a.mean() - b.mean()).abs() < 1e-9 * a.mean().max(1.0));
        prop_assert_eq!(a.median(), b.median());
        prop_assert_eq!(a.p99(), b.p99());
        prop_assert_eq!(a.min(), b.min());
        prop_assert_eq!(a.max(), b.max());
    }

    /// The circuit breaker never diverges from its specification mirror
    /// under arbitrary interleavings of admissions, outcome reports
    /// (resolved oldest-first or newest-first), vanished probes, and
    /// time advances.
    #[test]
    fn breaker_matches_specification_mirror(
        open_after in 1u32..5,
        half_open_probes in 1u32..4,
        cooldown_ms in 1u64..3_000,
        ops in prop::collection::vec((0u64..2_000, 0u8..8), 1..200),
    ) {
        let cfg = BreakerConfig {
            open_after,
            half_open_probes,
            cooldown: SimDuration::from_millis(cooldown_ms),
        };
        let mut breaker = CircuitBreaker::new(cfg);
        let mut monitor = BreakerMonitor::new(cfg);
        let mut now = SimTime::ZERO;
        // Admitted attempts not yet resolved (probe flags).
        let mut inflight: Vec<bool> = Vec::new();
        for &(dt_ms, op) in &ops {
            now += SimDuration::from_millis(dt_ms);
            match op {
                0..=2 => {
                    let (decision, event) = breaker.admit_traced(now);
                    let checked = monitor.on_admit(now, decision, event);
                    prop_assert!(checked.is_ok(), "admit diverged: {:?}", checked);
                    if decision != BreakerDecision::Reject {
                        inflight.push(decision == BreakerDecision::Probe);
                    }
                }
                3..=6 => {
                    let probe = if op < 5 {
                        (!inflight.is_empty()).then(|| inflight.remove(0))
                    } else {
                        inflight.pop()
                    };
                    if let Some(probe) = probe {
                        let success = op % 2 == 1;
                        let event = if success {
                            breaker.record_success(now, probe)
                        } else {
                            breaker.record_failure(now, probe)
                        };
                        let checked = monitor.on_outcome(now, success, probe, event);
                        prop_assert!(checked.is_ok(), "outcome diverged: {:?}", checked);
                    }
                }
                _ => {
                    // A probe's invocation vanishes without resolving.
                    if let Some(pos) = inflight.iter().position(|&p| p) {
                        inflight.remove(pos);
                        breaker.release_probe();
                        monitor.on_release();
                    }
                }
            }
            prop_assert_eq!(breaker.state(), monitor.state());
        }
    }

    /// Closed → open after exactly `open_after` consecutive final
    /// failures; a success while closed resets the streak.
    #[test]
    fn breaker_opens_after_exact_streak(open_after in 1u32..8, warmup in 0u32..3) {
        let cfg = BreakerConfig {
            open_after,
            half_open_probes: 1,
            cooldown: SimDuration::from_secs(1),
        };
        let mut b = CircuitBreaker::new(cfg);
        let now = SimTime::ZERO;
        for _ in 0..warmup {
            prop_assert_eq!(b.admit(now), BreakerDecision::Admit);
            prop_assert_eq!(b.record_success(now, false), None);
        }
        // One short of the threshold, broken by a success: still closed.
        for _ in 1..open_after {
            prop_assert_eq!(b.admit(now), BreakerDecision::Admit);
            prop_assert_eq!(b.record_failure(now, false), None);
        }
        prop_assert_eq!(b.record_success(now, false), None);
        prop_assert_eq!(b.state(), BreakerState::Closed);
        prop_assert_eq!(b.consecutive_failures(), 0);
        // A full uninterrupted streak: the final failure, and only it,
        // trips the breaker.
        let mut last = None;
        for i in 0..open_after {
            prop_assert_eq!(b.admit(now), BreakerDecision::Admit);
            last = b.record_failure(now, false);
            if i + 1 < open_after {
                prop_assert_eq!(last, None);
            }
        }
        prop_assert_eq!(last, Some(BreakerEvent::Opened));
        prop_assert_eq!(b.state(), BreakerState::Open);
        prop_assert_eq!(b.admit(now), BreakerDecision::Reject);
    }

    /// Open → half-open at exactly the cool-down boundary: one
    /// nanosecond early still rejects, the boundary instant admits the
    /// first probe.
    #[test]
    fn breaker_half_opens_exactly_at_cooldown(
        cooldown_ms in 1u64..10_000,
        trip_at_ms in 0u64..5_000,
    ) {
        let cooldown = SimDuration::from_millis(cooldown_ms);
        let cfg = BreakerConfig { open_after: 1, half_open_probes: 1, cooldown };
        let mut b = CircuitBreaker::new(cfg);
        let t0 = SimTime::ZERO + SimDuration::from_millis(trip_at_ms);
        prop_assert_eq!(b.admit(t0), BreakerDecision::Admit);
        prop_assert_eq!(b.record_failure(t0, false), Some(BreakerEvent::Opened));
        let just_before = t0 + (cooldown - SimDuration::from_nanos(1));
        prop_assert_eq!(b.admit_traced(just_before), (BreakerDecision::Reject, None));
        let boundary = t0 + cooldown;
        prop_assert_eq!(
            b.admit_traced(boundary),
            (BreakerDecision::Probe, Some(BreakerEvent::HalfOpened))
        );
        prop_assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    /// Half-open probe slots are conserved: exactly `half_open_probes`
    /// concurrent probes, a vanished probe frees its slot, a probe
    /// success closes (clearing the streak), a probe failure re-opens
    /// for a fresh cool-down.
    #[test]
    fn breaker_probe_slots_are_conserved(half_open_probes in 1u32..5, succeed in 0u8..2) {
        let cooldown = SimDuration::from_secs(1);
        let cfg = BreakerConfig { open_after: 1, half_open_probes, cooldown };
        let mut b = CircuitBreaker::new(cfg);
        prop_assert_eq!(b.admit(SimTime::ZERO), BreakerDecision::Admit);
        prop_assert_eq!(b.record_failure(SimTime::ZERO, false), Some(BreakerEvent::Opened));
        let t1 = SimTime::ZERO + cooldown;
        prop_assert_eq!(
            b.admit_traced(t1),
            (BreakerDecision::Probe, Some(BreakerEvent::HalfOpened))
        );
        for _ in 1..half_open_probes {
            prop_assert_eq!(b.admit_traced(t1), (BreakerDecision::Probe, None));
        }
        prop_assert_eq!(b.probes_in_flight(), half_open_probes);
        prop_assert_eq!(b.admit(t1), BreakerDecision::Reject);
        // A vanished probe frees exactly one slot.
        b.release_probe();
        prop_assert_eq!(b.admit_traced(t1), (BreakerDecision::Probe, None));
        prop_assert_eq!(b.admit(t1), BreakerDecision::Reject);
        if succeed == 1 {
            prop_assert_eq!(b.record_success(t1, true), Some(BreakerEvent::Closed));
            prop_assert_eq!(b.state(), BreakerState::Closed);
            prop_assert_eq!(b.consecutive_failures(), 0);
            prop_assert_eq!(b.probes_in_flight(), 0);
        } else {
            prop_assert_eq!(b.record_failure(t1, true), Some(BreakerEvent::Opened));
            prop_assert_eq!(b.state(), BreakerState::Open);
            prop_assert_eq!(b.probes_in_flight(), 0);
            // The re-open runs a full fresh cool-down from the failure.
            let just_before = t1 + (cooldown - SimDuration::from_nanos(1));
            prop_assert_eq!(b.admit(just_before), BreakerDecision::Reject);
            prop_assert_eq!(
                b.admit_traced(t1 + cooldown),
                (BreakerDecision::Probe, Some(BreakerEvent::HalfOpened))
            );
        }
    }

    /// Derived replicate seeds never collide with each other (or the
    /// root) for any realistic replicate count.
    #[test]
    fn replicate_seeds_unique_up_to_8192(root in 0u64..u64::MAX) {
        use hivemind_sim::rng::replicate_seed;
        let mut seen = std::collections::HashSet::with_capacity(8192);
        for index in 0..8192u64 {
            let seed = replicate_seed(root, index);
            prop_assert!(seen.insert(seed), "collision at replicate {}", index);
            prop_assert_ne!(seed, root, "replicate {} reuses the root seed", index);
        }
    }
}

proptest! {
    /// For any interleaving of pushes and pops over arbitrary keys, the
    /// calendar queue pops in exactly the reference `BinaryHeap` order.
    /// This is the queue-order invariant the engines' byte-determinism
    /// rests on, pinned independently of the debug-build shadow heap.
    #[test]
    fn calendar_pop_order_matches_reference_heap(
        ops in prop::collection::vec((any::<bool>(), 0u64..5_000_000_000, 0u64..64), 1..400),
    ) {
        use hivemind_sim::calendar::CalendarQueue;
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let mut cal: CalendarQueue<(SimTime, u64), u64> = CalendarQueue::new();
        let mut heap: BinaryHeap<Reverse<(SimTime, u64)>> = BinaryHeap::new();
        // The lane leg keeps keys unique (`lane * cap + seq`), so the
        // reference heap's order is total and the comparison is exact.
        let mut seq = 0u64;
        for &(push, t, lane) in &ops {
            if push || cal.is_empty() {
                let key = (SimTime::from_nanos(t), lane * 1_000 + seq);
                seq += 1;
                cal.push(key, seq);
                heap.push(Reverse(key));
            } else {
                let got = cal.pop().map(|(k, _)| k);
                let want = heap.pop().map(|Reverse(k)| k);
                prop_assert_eq!(got, want);
            }
        }
        while let Some((k, _)) = cal.pop() {
            let Reverse(want) = heap.pop().expect("heap tracks the calendar's len");
            prop_assert_eq!(k, want);
        }
        prop_assert!(heap.is_empty());
    }
}

//! Property-based tests for the serverless substrate.

use hivemind_faas::cluster::{Cluster, ClusterParams};
use hivemind_faas::iaas::{FixedPool, FixedPoolParams};
use hivemind_faas::types::{AppId, AppProfile, Invocation, Outcome};
use hivemind_sim::faults::RetryPolicy;
use hivemind_sim::overload::OverloadPolicy;
use hivemind_sim::rng::RngForge;
use hivemind_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

fn drain_cluster(c: &mut Cluster) -> Vec<hivemind_faas::types::Completion> {
    let mut done = Vec::new();
    while let Some(t) = c.next_wakeup() {
        done.extend(c.advance_to(t));
    }
    done
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every submitted invocation completes exactly once, with a
    /// breakdown that sums to its latency, regardless of arrival pattern,
    /// app mix, fault rate, or cluster size.
    #[test]
    fn cluster_conserves_invocations(
        arrivals in prop::collection::vec((0u64..30_000, 0u16..3), 1..120),
        servers in 1u32..6,
        cores in 1u32..8,
        fault_pct in 0u32..30,
    ) {
        let mut arrivals = arrivals;
        arrivals.sort_by_key(|&(t, _)| t);
        let params = ClusterParams {
            servers,
            cores_per_server: cores,
            fault_rate: fault_pct as f64 / 100.0,
            ..ClusterParams::default()
        };
        let mut cluster = Cluster::new(params, RngForge::new(7));
        for app in 0..3u16 {
            cluster.register_app(
                AppId(app),
                AppProfile::test_profile(10.0 + 40.0 * app as f64),
            );
        }
        for (i, &(t_ms, app)) in arrivals.iter().enumerate() {
            cluster.submit(
                SimTime::ZERO + SimDuration::from_millis(t_ms),
                Invocation::root(AppId(app), i as u64),
            );
        }
        let done = drain_cluster(&mut cluster);
        prop_assert_eq!(done.len(), arrivals.len());
        let mut tags: Vec<u64> = done.iter().map(|c| c.tag).collect();
        tags.sort_unstable();
        tags.dedup();
        prop_assert_eq!(tags.len(), arrivals.len(), "no duplicate completions");
        for c in &done {
            prop_assert_eq!(c.breakdown.total(), c.latency());
            prop_assert!(c.finished >= c.arrived);
            prop_assert!(c.server < servers);
        }
        prop_assert_eq!(cluster.running(), 0);
        prop_assert_eq!(cluster.queued(), 0);
    }

    /// Warm hits + cold misses equals container acquisitions, and the
    /// isolate flag always forces a cold start.
    #[test]
    fn warm_accounting_is_consistent(n in 1usize..60, isolate in any::<bool>()) {
        let mut cluster = Cluster::new(ClusterParams::default(), RngForge::new(9));
        cluster.register_app(AppId(0), AppProfile::test_profile(20.0));
        for i in 0..n {
            let mut inv = Invocation::root(AppId(0), i as u64);
            inv.isolate = isolate;
            cluster.submit(SimTime::from_secs(i as u64), inv);
        }
        let done = drain_cluster(&mut cluster);
        let (warm, cold) = cluster.container_stats();
        if isolate {
            prop_assert!(done.iter().all(|c| c.cold_start), "Isolate forbids reuse");
        }
        prop_assert_eq!(
            done.iter().filter(|c| c.cold_start).count() as u64,
            done.len() as u64 - warm,
            "cold completions + warm hits account for every run (cold = {}, warm = {})",
            cold,
            warm
        );
    }

    /// Conservation under overload: every submission resolves exactly
    /// once as completed, shed, or failed; the shed tally matches the
    /// plane's counters; and the admission queue never exceeds its bound
    /// at any observed instant.
    #[test]
    fn overload_conserves_and_bounds_queue(
        arrivals in prop::collection::vec((0u64..30_000, 0u16..3), 1..120),
        servers in 1u32..4,
        cores in 1u32..4,
        bound in 0u32..6,
        deadline_ms in 0u64..200,
        fault_pct in 0u32..40,
        breaker in any::<bool>(),
    ) {
        let mut arrivals = arrivals;
        arrivals.sort_by_key(|&(t, _)| t);
        let mut policy = OverloadPolicy::default().queue_bound(bound);
        // 0 means "no deadline knob" (SimDuration::ZERO is invalid).
        if deadline_ms > 0 {
            policy = policy.queue_deadline(SimDuration::from_millis(deadline_ms));
        }
        if breaker {
            policy = policy.breaker(2, SimDuration::from_millis(500));
        }
        let params = ClusterParams {
            servers,
            cores_per_server: cores,
            fault_rate: fault_pct as f64 / 100.0,
            // Bounded retries so faults can give up and trip the breaker.
            retry: RetryPolicy::bounded(1, SimDuration::ZERO),
            overload: policy,
            ..ClusterParams::default()
        };
        let mut cluster = Cluster::new(params, RngForge::new(11));
        for app in 0..3u16 {
            cluster.register_app(
                AppId(app),
                AppProfile::test_profile(10.0 + 40.0 * app as f64),
            );
        }
        for (i, &(t_ms, app)) in arrivals.iter().enumerate() {
            cluster.submit(
                SimTime::ZERO + SimDuration::from_millis(t_ms),
                Invocation::root(AppId(app), i as u64),
            );
            prop_assert!(
                cluster.queued() <= bound as usize,
                "queue {} exceeds bound {} after submit",
                cluster.queued(),
                bound
            );
        }
        let mut done = Vec::new();
        while let Some(t) = cluster.next_wakeup() {
            done.extend(cluster.advance_to(t));
            prop_assert!(
                cluster.queued() <= bound as usize,
                "queue {} exceeds bound {} at {}",
                cluster.queued(),
                bound,
                t
            );
        }
        // submitted = completed + shed + lost, each exactly once.
        prop_assert_eq!(done.len(), arrivals.len());
        let mut tags: Vec<u64> = done.iter().map(|c| c.tag).collect();
        tags.sort_unstable();
        tags.dedup();
        prop_assert_eq!(tags.len(), arrivals.len(), "no duplicate resolutions");
        let shed = done
            .iter()
            .filter(|c| matches!(c.outcome, Outcome::Shed { .. }))
            .count() as u64;
        prop_assert_eq!(shed, cluster.overload_counters().shed_total());
        for c in &done {
            prop_assert!(c.finished >= c.arrived);
            if matches!(c.outcome, Outcome::Shed { .. }) {
                prop_assert_eq!(c.breakdown.exec, SimDuration::ZERO);
                prop_assert_eq!(c.breakdown.instantiation, SimDuration::ZERO);
            }
        }
        prop_assert_eq!(cluster.running(), 0);
        prop_assert_eq!(cluster.queued(), 0);
    }

    /// The fixed pool also conserves work and never exceeds its size.
    #[test]
    fn fixed_pool_conserves_work(
        arrivals in prop::collection::vec(0u64..20_000, 1..80),
        workers in 1u32..6,
    ) {
        let mut arrivals = arrivals;
        arrivals.sort_unstable();
        let mut pool = FixedPool::new(
            FixedPoolParams {
                workers,
                ..FixedPoolParams::default()
            },
            RngForge::new(3),
        );
        pool.register_app(AppId(0), AppProfile::test_profile(50.0));
        for (i, &t_ms) in arrivals.iter().enumerate() {
            pool.submit(
                SimTime::ZERO + SimDuration::from_millis(t_ms),
                Invocation::root(AppId(0), i as u64),
            );
        }
        let mut done = Vec::new();
        while let Some(t) = pool.next_wakeup() {
            done.extend(pool.advance_to(t));
        }
        prop_assert_eq!(done.len(), arrivals.len());
        prop_assert!(pool.active_series().max() <= workers as f64);
        prop_assert_eq!(pool.queued(), 0);
    }
}

//! Function placement policies.
//!
//! The default OpenWhisk controller hashes each action to a "home" invoker
//! and probes forward when it is saturated. HiveMind's scheduler
//! (Sec. 4.3) instead (1) colocates child functions with their parents to
//! unlock in-memory data exchange, (2) steers invocations toward servers
//! holding warm containers, (3) otherwise picks the least-utilized healthy
//! server, and (4) avoids servers on straggler probation. Its decision
//! logic costs slightly more per invocation than stock OpenWhisk — the
//! paper notes this and shows the instantiation savings dwarf it.

use hivemind_sim::dist::Dist;
use hivemind_sim::time::SimTime;

use crate::container::WarmPool;
use crate::types::Invocation;

/// Read-only scheduling view of one server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerView {
    /// Server id.
    pub id: u32,
    /// Logical cores on the server.
    pub total_cores: u32,
    /// Cores currently pinned to running containers.
    pub busy_cores: u32,
    /// Whether the straggler monitor has put this node on probation.
    pub on_probation: bool,
}

impl ServerView {
    /// Cores currently free.
    pub fn free_cores(&self) -> u32 {
        self.total_cores - self.busy_cores
    }

    /// Utilization in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.total_cores == 0 {
            1.0
        } else {
            self.busy_cores as f64 / self.total_cores as f64
        }
    }
}

/// A placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerPolicy {
    /// Stock OpenWhisk: home-invoker hashing with linear probing.
    #[default]
    OpenWhiskDefault,
    /// HiveMind: colocation → warm steering → least-utilized healthy node.
    HiveMind,
}

impl SchedulerPolicy {
    /// Chooses a server with at least one free core for `inv`, or `None`
    /// if the cluster is saturated (the invocation then queues).
    pub fn choose(
        &self,
        now: SimTime,
        inv: &Invocation,
        servers: &[ServerView],
        warm: &WarmPool,
    ) -> Option<u32> {
        match self {
            SchedulerPolicy::OpenWhiskDefault => {
                // Home invoker = hash(app) mod n, probe forward.
                let n = servers.len();
                if n == 0 {
                    return None;
                }
                let home = (inv.app.0 as usize).wrapping_mul(0x9e37) % n;
                (0..n)
                    .map(|i| &servers[(home + i) % n])
                    .find(|s| s.free_cores() > 0)
                    .map(|s| s.id)
            }
            SchedulerPolicy::HiveMind => {
                let healthy_free = |s: &&ServerView| s.free_cores() > 0 && !s.on_probation;

                // 1. Parent colocation (enables in-memory exchange).
                if let Some(parent) = inv.parent_server {
                    if let Some(s) = servers.iter().find(|s| s.id == parent && healthy_free(s)) {
                        return Some(s.id);
                    }
                }
                // 2. Steer toward a warm container for this app.
                if !inv.isolate {
                    if let Some(ws) = warm.warm_server(now, inv.app) {
                        if let Some(s) = servers.iter().find(|s| s.id == ws && healthy_free(s)) {
                            return Some(s.id);
                        }
                    }
                }
                // 3. Least-utilized healthy server.
                let best = servers
                    .iter()
                    .filter(healthy_free)
                    .min_by(|a, b| {
                        a.utilization()
                            .total_cmp(&b.utilization())
                            .then(a.id.cmp(&b.id))
                    })
                    .map(|s| s.id);
                // 4. If every healthy server is full, fall back to
                //    probationed nodes rather than stalling the queue.
                best.or_else(|| {
                    servers
                        .iter()
                        .filter(|s| s.free_cores() > 0)
                        .min_by_key(|s| s.id)
                        .map(|s| s.id)
                })
            }
        }
    }

    /// Control-path management cost distribution for this policy:
    /// front-end + auth + bus + invoker dispatch (+ HiveMind's richer
    /// decision logic).
    pub fn management_cost(&self) -> Dist {
        match self {
            // NGINX ~0.3 ms, CouchDB auth ~1.5 ms, controller ~0.5 ms,
            // Kafka ~1 ms, invoker dequeue ~0.7 ms → ~4 ms median.
            SchedulerPolicy::OpenWhiskDefault => Dist::lognormal_median_sigma(4.0e-3, 0.35),
            // Slightly higher than stock OpenWhisk (Sec. 5.1).
            SchedulerPolicy::HiveMind => Dist::lognormal_median_sigma(4.6e-3, 0.30),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::ContainerParams;
    use crate::types::AppId;

    fn servers(free: &[u32]) -> Vec<ServerView> {
        free.iter()
            .enumerate()
            .map(|(i, &f)| ServerView {
                id: i as u32,
                total_cores: 40,
                busy_cores: 40 - f,
                on_probation: false,
            })
            .collect()
    }

    fn pool() -> WarmPool {
        WarmPool::new(ContainerParams::hivemind())
    }

    #[test]
    fn openwhisk_probes_past_full_home() {
        let policy = SchedulerPolicy::OpenWhiskDefault;
        let mut s = servers(&[0, 0, 5]);
        let choice = policy.choose(SimTime::ZERO, &Invocation::root(AppId(0), 0), &s, &pool());
        assert_eq!(choice, Some(2));
        s[2].busy_cores = 40;
        assert_eq!(
            policy.choose(SimTime::ZERO, &Invocation::root(AppId(0), 0), &s, &pool()),
            None
        );
    }

    #[test]
    fn hivemind_prefers_parent_server() {
        let policy = SchedulerPolicy::HiveMind;
        let s = servers(&[10, 10, 10]);
        let inv = Invocation::child_of(AppId(0), 0, 2, true);
        assert_eq!(policy.choose(SimTime::ZERO, &inv, &s, &pool()), Some(2));
    }

    #[test]
    fn hivemind_steers_to_warm_server() {
        let policy = SchedulerPolicy::HiveMind;
        let s = servers(&[10, 10, 10]);
        let mut warm = pool();
        warm.park(SimTime::ZERO, 1, AppId(7));
        let inv = Invocation::root(AppId(7), 0);
        assert_eq!(
            policy.choose(SimTime::from_secs(1), &inv, &s, &warm),
            Some(1)
        );
    }

    #[test]
    fn isolate_ignores_warm_steering() {
        let policy = SchedulerPolicy::HiveMind;
        // Server 1 is warm but heavily loaded; server 0 is idle.
        let mut s = servers(&[40, 1, 1]);
        s[1].busy_cores = 39;
        let mut warm = pool();
        warm.park(SimTime::ZERO, 1, AppId(7));
        let mut inv = Invocation::root(AppId(7), 0);
        inv.isolate = true;
        assert_eq!(
            policy.choose(SimTime::from_secs(1), &inv, &s, &warm),
            Some(0)
        );
    }

    #[test]
    fn hivemind_picks_least_utilized() {
        let policy = SchedulerPolicy::HiveMind;
        let s = servers(&[1, 30, 10]);
        let inv = Invocation::root(AppId(3), 0);
        assert_eq!(policy.choose(SimTime::ZERO, &inv, &s, &pool()), Some(1));
    }

    #[test]
    fn hivemind_avoids_probation_until_forced() {
        let policy = SchedulerPolicy::HiveMind;
        let mut s = servers(&[40, 40]);
        s[0].on_probation = true;
        let inv = Invocation::root(AppId(0), 0);
        assert_eq!(policy.choose(SimTime::ZERO, &inv, &s, &pool()), Some(1));
        // Only the probationed server has room: still place rather than stall.
        s[1].busy_cores = 40;
        assert_eq!(policy.choose(SimTime::ZERO, &inv, &s, &pool()), Some(0));
    }

    #[test]
    fn management_costs_are_millisecond_scale() {
        for p in [SchedulerPolicy::OpenWhiskDefault, SchedulerPolicy::HiveMind] {
            let m = p.management_cost().mean_secs();
            assert!(m > 1e-3 && m < 20e-3, "{p:?}: {m}");
        }
        assert!(
            SchedulerPolicy::HiveMind.management_cost().mean_secs()
                > SchedulerPolicy::OpenWhiskDefault
                    .management_cost()
                    .mean_secs(),
            "HiveMind's scheduler costs slightly more per decision"
        );
    }

    #[test]
    fn empty_cluster_yields_none() {
        for p in [SchedulerPolicy::OpenWhiskDefault, SchedulerPolicy::HiveMind] {
            assert_eq!(
                p.choose(SimTime::ZERO, &Invocation::root(AppId(0), 0), &[], &pool()),
                None
            );
        }
    }
}

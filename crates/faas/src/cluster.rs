//! The serverless cluster component.
//!
//! Accepts [`Invocation`]s, runs them through the modeled OpenWhisk
//! pipeline — management control path, scheduling, container acquisition,
//! data plane I/O, execution on a pinned core — and reports [`Completion`]s
//! with full latency breakdowns. Implements the paper's fault tolerance
//! (failed functions respawn automatically, Fig. 5c) and straggler
//! mitigation (functions exceeding the job's 90th percentile are respawned
//! and the first finisher wins; nodes producing repeated stragglers go on
//! probation, Sec. 4.6).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use hivemind_sim::component::Component;
use hivemind_sim::faults::{self, RetryDecision, RetryPolicy};
use hivemind_sim::overload::{self, BreakerDecision, BreakerEvent, CircuitBreaker, OverloadPolicy};
use hivemind_sim::rng::RngForge;
use hivemind_sim::stats::{QuantileTracker, TimeSeries};
use hivemind_sim::time::{SimDuration, SimTime};
use hivemind_sim::trace::{ArgValue, TraceHandle};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::container::{ContainerParams, WarmPool};
use crate::dataplane::{DataPlane, ExchangeProtocol};
use crate::scheduler::SchedulerPolicy;
#[cfg(debug_assertions)]
use crate::scheduler::ServerView;
use crate::types::{
    AppId, AppProfile, Completion, Invocation, LatencyBreakdown, Outcome, ShedReason,
};
use hivemind_net::rpc::RateGate;

/// Cluster sizing and policy knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterParams {
    /// Number of servers (paper testbed: 12).
    pub servers: u32,
    /// Logical cores per server (paper testbed: 40).
    pub cores_per_server: u32,
    /// Placement policy.
    pub policy: SchedulerPolicy,
    /// Container lifecycle parameters.
    pub container: ContainerParams,
    /// Protocol for input fetch when not colocated.
    pub exchange_in: ExchangeProtocol,
    /// Protocol for output store.
    pub exchange_out: ExchangeProtocol,
    /// Probability an invocation attempt fails mid-run (Fig. 5c injects
    /// 0.05–0.20).
    pub fault_rate: f64,
    /// Enable p90 straggler respawn.
    pub straggler_mitigation: bool,
    /// Quantile that flags a straggler (paper: 0.90, tunable).
    pub straggler_quantile: f64,
    /// Minimum completed samples before straggler detection activates.
    pub straggler_min_samples: usize,
    /// Stragglers within [`Self::probation_window`] that trigger probation.
    pub probation_threshold: u32,
    /// Sliding window for counting per-node stragglers.
    pub probation_window: SimDuration,
    /// How long a node stays on probation ("a few minutes", Sec. 4.6).
    pub probation_duration: SimDuration,
    /// Cluster-wide cap on concurrently admitted functions (AWS Lambda's
    /// default user limit is 1,000).
    pub max_concurrent: u32,
    /// Control-plane decision throughput of one scheduler, decisions/s.
    /// The centralized controller serializes admissions; past this rate
    /// the control plane itself queues (the Sec. 5.6 scalability wall).
    pub controller_rps: f64,
    /// Number of scheduler shards (Sec. 4.3: HiveMind falls back to
    /// multiple schedulers with shared state when one saturates).
    pub scheduler_shards: u32,
    /// Retry/timeout/backoff policy for faulted function attempts. The
    /// default reproduces the historical behaviour (up to 5 respawns,
    /// final attempt always succeeds) with a bit-identical RNG sequence.
    pub retry: RetryPolicy,
    /// Overload-control plane (bounded admission queue, queueing
    /// deadline, per-app concurrency limit, circuit breaker). The inert
    /// default draws no RNG and changes no byte of any run.
    pub overload: OverloadPolicy,
}

impl Default for ClusterParams {
    fn default() -> Self {
        ClusterParams {
            servers: 12,
            cores_per_server: 40,
            policy: SchedulerPolicy::OpenWhiskDefault,
            container: ContainerParams::openwhisk_default(),
            exchange_in: ExchangeProtocol::CouchDb,
            exchange_out: ExchangeProtocol::CouchDb,
            fault_rate: 0.0,
            straggler_mitigation: false,
            straggler_quantile: 0.90,
            straggler_min_samples: 20,
            probation_threshold: 3,
            probation_window: SimDuration::from_secs(60),
            probation_duration: SimDuration::from_secs(180),
            max_concurrent: 1000,
            controller_rps: 500.0,
            scheduler_shards: 1,
            retry: RetryPolicy::default(),
            overload: OverloadPolicy::default(),
        }
    }
}

impl ClusterParams {
    /// The full HiveMind configuration: HiveMind scheduler, long
    /// keep-alive, FPGA remote-memory data plane.
    pub fn hivemind() -> Self {
        ClusterParams {
            policy: SchedulerPolicy::HiveMind,
            container: ContainerParams::hivemind(),
            exchange_in: ExchangeProtocol::RemoteMemory,
            exchange_out: ExchangeProtocol::RemoteMemory,
            straggler_mitigation: true,
            ..ClusterParams::default()
        }
    }

    /// HiveMind without hardware acceleration (the "HiveMind-No Accel"
    /// ablation of Fig. 13): same scheduler/keep-alive, CouchDB data plane.
    pub fn hivemind_no_accel() -> Self {
        ClusterParams {
            exchange_in: ExchangeProtocol::CouchDb,
            exchange_out: ExchangeProtocol::CouchDb,
            ..ClusterParams::hivemind()
        }
    }

    /// Total cores in the cluster.
    pub fn total_cores(&self) -> u32 {
        self.servers * self.cores_per_server
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    Admit(u32),
    /// Container ready; fetch the input through the data plane.
    DataIn(u32),
    /// Execution finished; store the output through the data plane.
    DataOut(u32),
    Complete(u32),
    // Fault-plan events. New variants go at the end: `Ev` derives `Ord`
    // and the event heap's tie-break must not change for existing runs.
    /// Server drops out, losing its in-flight invocations.
    Crash(u32),
    /// Server rejoins the cluster.
    Recover(u32),
}

#[derive(Debug)]
struct InvState {
    inv: Invocation,
    arrived: SimTime,
    ready: SimTime, // arrived + management
    management: SimDuration,
    server: u32,
    breakdown: LatencyBreakdown,
    cold: bool,
    in_memory: bool,
    outcome: Outcome,
    done: bool,
    /// Whether the child was colocated with its parent's container.
    colocated: bool,
    /// Whether a core has been occupied for it (post-`admit`).
    placed: bool,
    /// Lost to a server crash; its pending events are dead letters and a
    /// clone has been resubmitted under a fresh index.
    aborted: bool,
    /// Admitted as a half-open circuit-breaker probe; cleared once its
    /// outcome is reported back to the breaker.
    probe: bool,
}

/// Ascending sorted-`Vec` id set for the placement index. Iterates in
/// ascending server-id order exactly like the `BTreeSet` it replaced —
/// the chooser's tie-break depends on that — but inserts and removes
/// shift within one pre-reserved buffer instead of splitting tree
/// nodes, so steady-state busy-level changes never touch the allocator.
#[derive(Debug, Default, Clone)]
struct SortedIdSet(Vec<u32>);

impl SortedIdSet {
    fn with_capacity(cap: usize) -> Self {
        SortedIdSet(Vec::with_capacity(cap))
    }

    fn insert(&mut self, id: u32) {
        if let Err(pos) = self.0.binary_search(&id) {
            self.0.insert(pos, id);
        }
    }

    fn remove(&mut self, id: u32) {
        if let Ok(pos) = self.0.binary_search(&id) {
            self.0.remove(pos);
        }
    }

    fn iter(&self) -> std::slice::Iter<'_, u32> {
        self.0.iter()
    }
}

/// The serverless cluster.
///
/// # Examples
///
/// ```rust
/// use hivemind_faas::cluster::{Cluster, ClusterParams};
/// use hivemind_faas::types::{AppId, AppProfile, Invocation};
/// use hivemind_sim::rng::RngForge;
/// use hivemind_sim::time::SimTime;
///
/// let mut cluster = Cluster::new(ClusterParams::default(), RngForge::new(1));
/// cluster.register_app(AppId(0), AppProfile::test_profile(100.0));
/// cluster.submit(SimTime::ZERO, Invocation::root(AppId(0), 7));
/// let mut done = Vec::new();
/// while let Some(t) = cluster.next_wakeup() {
///     done.extend(cluster.advance_to(t));
/// }
/// assert_eq!(done.len(), 1);
/// assert_eq!(done[0].tag, 7);
/// assert!(done[0].latency().as_millis_f64() > 100.0); // exec + overheads
/// ```
#[derive(Debug)]
pub struct Cluster {
    params: ClusterParams,
    apps: HashMap<AppId, AppProfile>,
    busy: Vec<u32>,
    probation_until: Vec<SimTime>,
    straggler_events: Vec<VecDeque<SimTime>>,
    warm: WarmPool,
    dataplane: DataPlane,
    rng: SmallRng,
    invs: Vec<InvState>,
    heap: BinaryHeap<Reverse<(SimTime, u64, Ev)>>,
    seq: u64,
    wait_queue: VecDeque<u32>,
    running: u32,
    completions: Vec<Completion>,
    /// Placement index: `by_busy[b]` holds the ids of servers with
    /// exactly `b` pinned cores (crash masking stays in `down_until`),
    /// `with_free` the ids with at least one free core. Together they
    /// answer every scheduling query in near-constant time — the old
    /// rebuild-all-views-per-admission path made 100k-device fleets
    /// quadratic. Every total is identical (`cores_per_server`), so
    /// busy-count order *is* utilization order and the indexed chooser
    /// reproduces [`SchedulerPolicy::choose`] decision-for-decision
    /// (asserted against it in debug builds).
    by_busy: Vec<SortedIdSet>,
    with_free: SortedIdSet,
    /// Reusable scheduler-view buffer for the debug-only reference
    /// placement check.
    #[cfg(debug_assertions)]
    view_scratch: Vec<ServerView>,
    /// Exec-time history per app for straggler thresholds.
    /// The straggler monitor interleaves a record and a quantile query
    /// per completion, so this is a [`QuantileTracker`] (O(log n) both
    /// ways) rather than a [`Summary`], whose hot sorted cache would
    /// make each record a linear insert — quadratic over a mission.
    exec_history: HashMap<AppId, QuantileTracker>,
    active_series: TimeSeries,
    stragglers_mitigated: u64,
    faults_recovered: u64,
    last_event_time: SimTime,
    controller_gate: RateGate,
    tracer: TraceHandle,
    /// Per-server crash windows: a server with `down_until > now` is
    /// invisible to the scheduler.
    down_until: Vec<SimTime>,
    /// Recovery instants for scheduled crashes, FIFO per server.
    pending_recover: Vec<(u32, SimTime)>,
    /// Controller-outage windows `[from, until)` (sorted); submissions
    /// landing inside one stall until the backup controller takes over.
    outages: Vec<(SimTime, SimTime)>,
    crash_stats: CrashStats,
    /// Per-app circuit breakers, created on demand (overload plane only).
    breakers: HashMap<AppId, CircuitBreaker>,
    /// Concurrent running invocations per app, maintained only while a
    /// per-app limit is configured.
    app_running: HashMap<AppId, u32>,
    shed_counters: OverloadCounters,
}

/// Counters describing overload-plane shedding and breaker activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OverloadCounters {
    /// Invocations shed because the bounded admission queue was full.
    pub shed_queue_full: u64,
    /// Invocations shed because their queueing deadline expired.
    pub shed_deadline: u64,
    /// Invocations shed by an open circuit breaker (fail fast).
    pub shed_breaker: u64,
    /// Times any app's breaker tripped open (re-opens included).
    pub breaker_opens: u32,
}

impl OverloadCounters {
    /// Total invocations shed by any mechanism.
    pub fn shed_total(&self) -> u64 {
        self.shed_queue_full + self.shed_deadline + self.shed_breaker
    }
}

/// Counters describing server-crash and give-up damage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CrashStats {
    /// Scheduled server crashes that fired.
    pub server_crashes: u32,
    /// In-flight invocations lost to a crash (each was rescheduled).
    pub invocations_lost: u64,
    /// Lost invocations resubmitted to another server.
    pub invocations_rescheduled: u64,
    /// Invocations whose retry policy gave up (`Outcome::Failed`).
    pub invocations_failed: u64,
}

impl Cluster {
    /// Creates a cluster; randomness derives from `forge`.
    ///
    /// # Panics
    ///
    /// Panics on zero-sized clusters or out-of-range rates.
    pub fn new(params: ClusterParams, forge: RngForge) -> Self {
        assert!(params.servers > 0 && params.cores_per_server > 0);
        assert!((0.0..=1.0).contains(&params.fault_rate));
        assert!((0.0..1.0).contains(&params.straggler_quantile));
        assert!(params.controller_rps > 0.0 && params.scheduler_shards > 0);
        let servers = params.servers as usize;
        let gate_rate = params.controller_rps * params.scheduler_shards as f64;
        Cluster {
            controller_gate: RateGate::new(gate_rate),
            warm: WarmPool::new(params.container.clone()),
            busy: vec![0; servers],
            probation_until: vec![SimTime::ZERO; servers],
            // Per-server windows see at most a handful of events; reserve
            // so the first straggler on a node doesn't allocate. (`vec!`
            // would clone the reservation away.)
            straggler_events: (0..servers).map(|_| VecDeque::with_capacity(8)).collect(),
            dataplane: DataPlane::for_cluster(params.servers),
            rng: forge.stream("faas-cluster"),
            apps: HashMap::new(),
            invs: Vec::new(),
            heap: BinaryHeap::new(),
            seq: 0,
            wait_queue: VecDeque::new(),
            running: 0,
            completions: Vec::new(),
            by_busy: {
                // Full capacity per busy level: a level can transiently
                // hold every server, and reserving up front is what
                // keeps `set_busy` allocation-free for the whole run.
                // (`vec![set; n]` would clone away the reservation.)
                let mut v: Vec<SortedIdSet> = (0..=params.cores_per_server)
                    .map(|_| SortedIdSet::with_capacity(servers))
                    .collect();
                for s in 0..params.servers {
                    v[0].insert(s);
                }
                v
            },
            with_free: {
                let mut s = SortedIdSet::with_capacity(servers);
                for id in 0..params.servers {
                    s.insert(id);
                }
                s
            },
            #[cfg(debug_assertions)]
            view_scratch: Vec::with_capacity(servers),
            exec_history: HashMap::new(),
            active_series: TimeSeries::new(),
            stragglers_mitigated: 0,
            faults_recovered: 0,
            last_event_time: SimTime::ZERO,
            tracer: TraceHandle::disabled(),
            down_until: vec![SimTime::ZERO; servers],
            pending_recover: Vec::new(),
            outages: Vec::new(),
            crash_stats: CrashStats::default(),
            breakers: HashMap::new(),
            app_running: HashMap::new(),
            shed_counters: OverloadCounters::default(),
            params,
        }
    }

    /// Schedules a server crash at `at`: every in-flight invocation on
    /// `server` is lost and resubmitted, and the server stays invisible
    /// to the scheduler until `at + down`.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn schedule_server_crash(&mut self, at: SimTime, server: u32, down: SimDuration) {
        assert!(server < self.params.servers, "server out of range");
        self.pending_recover.push((server, at + down));
        self.push_event(at, Ev::Crash(server));
        self.push_event(at + down, Ev::Recover(server));
    }

    /// Registers a controller-outage window `[from, until)`. Submissions
    /// arriving inside it wait for the backup controller before their
    /// scheduling decision; the stall shows up as management latency.
    pub fn add_controller_outage(&mut self, from: SimTime, until: SimTime) {
        self.outages.push((from, until));
        self.outages.sort_unstable();
    }

    /// Crash and give-up damage counters.
    pub fn crash_stats(&self) -> CrashStats {
        self.crash_stats
    }

    /// Installs a tracing handle. The cluster then emits `sched/placement`
    /// instants per admission, `container/cold_start` / `container/warm_start`
    /// instants, and `faas/running`, `faas/queued`, and per-server
    /// `faas/server.busy` counter samples at every occupancy change.
    pub fn set_tracer(&mut self, tracer: TraceHandle) {
        self.tracer = tracer;
    }

    /// Emits the cluster-wide occupancy counters (no-op when disabled).
    fn sample_occupancy(&self, now: SimTime) {
        if self.tracer.is_enabled() {
            self.tracer
                .counter("faas", "running", 0, now, self.running as f64);
            self.tracer
                .counter("faas", "queued", 0, now, self.wait_queue.len() as f64);
        }
    }

    /// Registers (or replaces) an application profile.
    pub fn register_app(&mut self, app: AppId, profile: AppProfile) {
        self.apps.insert(app, profile);
    }

    /// The cluster parameters.
    pub fn params(&self) -> &ClusterParams {
        &self.params
    }

    /// Submits an invocation at `now`.
    ///
    /// # Panics
    ///
    /// Panics if the app was never registered.
    pub fn submit(&mut self, now: SimTime, inv: Invocation) {
        assert!(
            self.apps.contains_key(&inv.app),
            "app {:?} not registered",
            inv.app
        );
        // A controller outage stalls the decision until the backup takes
        // over; the stall is charged to management like any control-plane
        // queueing. Windows are sorted, so one pass handles chains.
        let mut decision_at = now;
        for &(from, until) in &self.outages {
            if decision_at >= from && decision_at < until {
                decision_at = until;
            }
        }
        // The control plane serializes scheduling decisions: wait for a
        // scheduler slot, then pay the per-decision management cost.
        let control_wait = (decision_at - now) + self.controller_gate.admit(decision_at);
        let management = control_wait + self.params.policy.management_cost().sample(&mut self.rng);
        let idx = self.invs.len() as u32;
        self.invs.push(InvState {
            inv,
            arrived: now,
            ready: now + management,
            management,
            server: 0,
            breakdown: LatencyBreakdown::default(),
            cold: false,
            in_memory: false,
            outcome: Outcome::Ok,
            done: false,
            colocated: false,
            placed: false,
            aborted: false,
            probe: false,
        });
        self.push_event(now + management, Ev::Admit(idx));
    }

    fn push_event(&mut self, at: SimTime, ev: Ev) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse((at, seq, ev)));
    }

    /// Moves `server` to busy level `new`, keeping the placement index
    /// consistent.
    fn set_busy(&mut self, server: u32, new: u32) {
        let old = self.busy[server as usize];
        if old == new {
            return;
        }
        self.by_busy[old as usize].remove(server);
        self.by_busy[new as usize].insert(server);
        let cores = self.params.cores_per_server;
        if old >= cores && new < cores {
            self.with_free.insert(server);
        } else if old < cores && new >= cores {
            self.with_free.remove(server);
        }
        self.busy[server as usize] = new;
    }

    fn server_is_up(&self, server: u32, now: SimTime) -> bool {
        self.down_until[server as usize] <= now
    }

    /// The reference policy's `healthy_free`: up, spare core, not on
    /// probation (a crashed server reports itself full there).
    fn healthy_free(&self, server: u32, now: SimTime) -> bool {
        self.server_is_up(server, now)
            && self.busy[server as usize] < self.params.cores_per_server
            && self.probation_until[server as usize] <= now
    }

    /// Chooses a server for `self.invs[idx]` through the placement
    /// index — the same decision [`SchedulerPolicy::choose`] makes over
    /// a full server-view sweep, without the per-admission O(servers)
    /// rebuild. Debug builds assert the equivalence on every call.
    fn choose_indexed(&mut self, now: SimTime, idx: u32) -> Option<u32> {
        let n = self.params.servers;
        let cores = self.params.cores_per_server;
        let (app, isolate, parent_server) = {
            let inv = &self.invs[idx as usize].inv;
            (inv.app, inv.isolate, inv.parent_server)
        };
        let choice = match self.params.policy {
            SchedulerPolicy::OpenWhiskDefault => {
                // Home invoker = hash(app) mod n, probe forward. The
                // probe ends at the first free server — O(1) until the
                // cluster saturates.
                let home = (app.0 as usize).wrapping_mul(0x9e37) % n as usize;
                (0..n as usize)
                    .map(|i| ((home + i) % n as usize) as u32)
                    .find(|&s| self.server_is_up(s, now) && self.busy[s as usize] < cores)
            }
            SchedulerPolicy::HiveMind => {
                // 1. Parent colocation.
                let mut pick = parent_server.filter(|&p| p < n && self.healthy_free(p, now));
                // 2. Warm-container steering.
                if pick.is_none() && !isolate {
                    pick = self
                        .warm
                        .warm_server(now, app)
                        .filter(|&w| w < n && self.healthy_free(w, now));
                }
                // 3. Least-utilized healthy server: identical totals
                //    make utilization order the busy-count order, so
                //    the lowest non-empty bucket's smallest eligible id
                //    is the reference policy's minimum.
                if pick.is_none() {
                    'buckets: for bucket in &self.by_busy[..cores as usize] {
                        for &s in bucket.iter() {
                            if self.server_is_up(s, now) && self.probation_until[s as usize] <= now
                            {
                                pick = Some(s);
                                break 'buckets;
                            }
                        }
                    }
                }
                // 4. Saturated-but-probationed fallback: smallest id
                //    with a spare core.
                pick.or_else(|| {
                    self.with_free
                        .iter()
                        .copied()
                        .find(|&s| self.server_is_up(s, now))
                })
            }
        };
        #[cfg(debug_assertions)]
        {
            self.refresh_server_views(now);
            debug_assert_eq!(
                choice,
                self.params.policy.choose(
                    now,
                    &self.invs[idx as usize].inv,
                    &self.view_scratch,
                    &self.warm
                ),
                "indexed placement diverged from the reference policy"
            );
        }
        choice
    }

    /// Rebuilds `view_scratch` with the schedulers' picture of the
    /// cluster at `now` (debug-only reference oracle for the placement
    /// index).
    #[cfg(debug_assertions)]
    fn refresh_server_views(&mut self, now: SimTime) {
        self.view_scratch.clear();
        for s in 0..self.params.servers {
            self.view_scratch.push(ServerView {
                id: s,
                total_cores: self.params.cores_per_server,
                // A crashed server reports every core busy, which keeps
                // both placement policies away from it without any
                // scheduler-side special casing.
                busy_cores: if self.down_until[s as usize] > now {
                    self.params.cores_per_server
                } else {
                    self.busy[s as usize]
                },
                on_probation: self.probation_until[s as usize] > now,
            });
        }
    }

    fn straggler_threshold(&self, app: AppId) -> Option<SimDuration> {
        let hist = self.exec_history.get(&app)?;
        if hist.len() < self.params.straggler_min_samples {
            return None;
        }
        Some(SimDuration::from_secs_f64(hist.quantile()))
    }

    fn admit(&mut self, now: SimTime, idx: u32) {
        if self.params.overload.is_active() && self.overload_gate(now, idx) {
            return;
        }
        if self.running >= self.params.max_concurrent {
            self.enqueue_or_shed(now, idx);
            return;
        }
        let Some(server) = self.choose_indexed(now, idx) else {
            self.enqueue_or_shed(now, idx);
            return;
        };
        self.place(now, idx, server);
    }

    /// Overload-plane admission gate: sheds on an open circuit breaker
    /// and queues at the per-app concurrency limit. Returns `true` if the
    /// invocation was consumed (shed or queued) and admission must stop.
    fn overload_gate(&mut self, now: SimTime, idx: u32) -> bool {
        let app = self.invs[idx as usize].inv.app;
        if let Some(cfg) = self.params.overload.breaker {
            let (decision, event) = self
                .breakers
                .entry(app)
                .or_insert_with(|| CircuitBreaker::new(cfg))
                .admit_traced(now);
            if let Some(ev) = event {
                self.note_breaker_event(now, app, ev);
            }
            match decision {
                BreakerDecision::Reject => {
                    self.shed(now, idx, ShedReason::BreakerOpen);
                    return true;
                }
                BreakerDecision::Probe => self.invs[idx as usize].probe = true,
                BreakerDecision::Admit => {}
            }
        }
        if let Some(limit) = self.params.overload.admission.per_app_limit {
            if self.app_running.get(&app).copied().unwrap_or(0) >= limit {
                self.enqueue_or_shed(now, idx);
                return true;
            }
        }
        false
    }

    /// Queues an admitted-but-unplaceable invocation, shedding instead
    /// when the bounded admission queue is full.
    fn enqueue_or_shed(&mut self, now: SimTime, idx: u32) {
        if let Some(bound) = self.params.overload.admission.queue_bound {
            if self.wait_queue.len() as u32 >= bound {
                self.shed(now, idx, ShedReason::QueueFull);
                return;
            }
        }
        self.wait_queue.push_back(idx);
        self.sample_occupancy(now);
    }

    /// Rejects an unplaced invocation: it completes immediately with
    /// [`Outcome::Shed`], charged only its management and queueing time —
    /// no core, container, or data-plane work is spent on it. The
    /// completion is pushed directly (admissions run in event-time order,
    /// so the completion stream stays chronological).
    fn shed(&mut self, now: SimTime, idx: u32, reason: ShedReason) {
        let (tag, app) = {
            let st = &mut self.invs[idx as usize];
            debug_assert!(!st.placed && !st.done, "shed of a live invocation");
            st.done = true;
            st.outcome = Outcome::Shed { reason };
            st.breakdown.management = st.management;
            st.breakdown.queueing = now.saturating_since(st.ready);
            (st.inv.tag, st.inv.app)
        };
        match reason {
            ShedReason::QueueFull => self.shed_counters.shed_queue_full += 1,
            ShedReason::DeadlineExpired => self.shed_counters.shed_deadline += 1,
            ShedReason::BreakerOpen => self.shed_counters.shed_breaker += 1,
        }
        if self.tracer.is_enabled() {
            let reason_str = match reason {
                ShedReason::QueueFull => "queue_full",
                ShedReason::DeadlineExpired => "deadline_expired",
                ShedReason::BreakerOpen => "breaker_open",
            };
            self.tracer.instant(
                "sched",
                overload::EV_SHED,
                0,
                now,
                vec![
                    ("app", ArgValue::U64(app.0 as u64)),
                    ("tag", ArgValue::U64(tag)),
                    ("reason", ArgValue::Str(reason_str.into())),
                ],
            );
            self.sample_occupancy(now);
        }
        let st = &self.invs[idx as usize];
        self.completions.push(Completion {
            tag,
            app,
            server: 0,
            arrived: st.arrived,
            finished: now,
            breakdown: st.breakdown,
            cold_start: false,
            in_memory_exchange: false,
            outcome: st.outcome,
        });
    }

    /// Counts and (when tracing) emits a breaker state transition.
    fn note_breaker_event(&mut self, now: SimTime, app: AppId, ev: BreakerEvent) {
        if ev == BreakerEvent::Opened {
            self.shed_counters.breaker_opens += 1;
        }
        if self.tracer.is_enabled() {
            let name = match ev {
                BreakerEvent::Opened => overload::EV_BREAKER_OPEN,
                BreakerEvent::HalfOpened => overload::EV_BREAKER_HALF_OPEN,
                BreakerEvent::Closed => overload::EV_BREAKER_CLOSE,
            };
            self.tracer.instant(
                overload::BREAKER_TRACE_CAT,
                name,
                app.0 as u32,
                now,
                vec![("app", ArgValue::U64(app.0 as u64))],
            );
        }
    }

    /// Places an admitted invocation on its chosen server: occupies a
    /// core, acquires a container, and schedules the data-in stage.
    fn place(&mut self, now: SimTime, idx: u32, server: u32) {
        // --- Occupy a pinned core. ---
        self.set_busy(server, self.busy[server as usize] + 1);
        self.running += 1;
        self.active_series.record(now, self.running as f64);

        let (app, isolate, parent_server, parent_in_memory) = {
            let st = &self.invs[idx as usize];
            (
                st.inv.app,
                st.inv.isolate,
                st.inv.parent_server,
                st.inv.parent_in_memory,
            )
        };
        if self.params.overload.admission.per_app_limit.is_some() {
            *self.app_running.entry(app).or_insert(0) += 1;
        }

        // --- Container acquisition. ---
        let colocated = parent_server == Some(server) && parent_in_memory;
        let warm_hit = if isolate {
            false
        } else if colocated {
            // Child reuses the parent's still-live container outright.
            true
        } else {
            self.warm.try_take(now, server, app)
        };
        let instantiation = self.warm.instantiation_cost(warm_hit, &mut self.rng);
        {
            let st = &mut self.invs[idx as usize];
            st.server = server;
            st.cold = !warm_hit;
            st.in_memory = colocated;
            st.colocated = colocated;
            st.placed = true;
            st.breakdown.queueing = now - st.ready;
            st.breakdown.management = st.management;
            st.breakdown.instantiation = instantiation;
        }
        if self.tracer.is_enabled() {
            let st = &self.invs[idx as usize];
            self.tracer.instant(
                "sched",
                "placement",
                server,
                now,
                vec![
                    ("app", ArgValue::U64(st.inv.app.0 as u64)),
                    ("tag", ArgValue::U64(st.inv.tag)),
                    ("server", ArgValue::U64(server as u64)),
                    ("queued_ns", ArgValue::U64(st.breakdown.queueing.as_nanos())),
                    ("cold", ArgValue::Bool(!warm_hit)),
                    ("colocated", ArgValue::Bool(colocated)),
                ],
            );
            self.tracer.instant(
                "container",
                if warm_hit { "warm_start" } else { "cold_start" },
                server,
                now,
                vec![
                    ("app", ArgValue::U64(st.inv.app.0 as u64)),
                    ("tag", ArgValue::U64(st.inv.tag)),
                    ("instantiation_ns", ArgValue::U64(instantiation.as_nanos())),
                ],
            );
            self.tracer.counter(
                "faas",
                "server.busy",
                server,
                now,
                self.busy[server as usize] as f64,
            );
            self.sample_occupancy(now);
        }
        self.push_event(now + instantiation, Ev::DataIn(idx));
    }

    /// Container is up: fetch input, then execute. Runs at its true
    /// chronological instant so the shared data plane sees arrivals in
    /// order (a CouchDB instance is a FIFO queue — feeding it future
    /// timestamps would corrupt its backlog accounting).
    fn data_in_stage(&mut self, now: SimTime, idx: u32) {
        let (app, colocated, server) = {
            let st = &self.invs[idx as usize];
            (st.inv.app, st.colocated, st.server)
        };
        let profile = &self.apps[&app];
        let in_proto = if colocated {
            ExchangeProtocol::InMemory
        } else {
            self.params.exchange_in
        };
        let data_in = if profile.input_bytes > 0 {
            self.dataplane
                .exchange(now, in_proto, profile.input_bytes, &mut self.rng)
        } else {
            SimDuration::ZERO
        };

        // --- Execution with fault injection, governed by the retry
        // policy. The default policy draws the exact legacy sequence
        // (sample, coin, wasted fraction, respawn cost; up to 5 respawns,
        // final attempt forced to succeed) so fault-free and
        // default-policy runs are bit-identical to pre-policy builds.
        let rp = &self.params.retry;
        let mut wasted = SimDuration::ZERO;
        let mut respawns = 0u32;
        let mut gave_up = false;
        let final_exec = loop {
            let draw = profile.exec.sample(&mut self.rng);
            if let Some(to) = rp.timeout {
                // Attempts over budget are killed and retried without an
                // extra RNG draw (the kill is deterministic given the
                // sample), so enabling a timeout only reshapes `wasted`.
                if draw > to {
                    match rp.on_fault(respawns) {
                        RetryDecision::Retry { backoff } => {
                            wasted += to;
                            wasted += self.warm.instantiation_cost(true, &mut self.rng);
                            wasted += backoff;
                            respawns += 1;
                            continue;
                        }
                        RetryDecision::GiveUp => {
                            wasted += to;
                            gave_up = true;
                            break SimDuration::ZERO;
                        }
                        // Out of attempts but forced to succeed: let it run.
                        RetryDecision::ForceSuccess => {}
                    }
                }
            }
            // The match guards reproduce the legacy draw order exactly: a
            // fault coin is flipped only on arms that flipped one before
            // this was expressed through `RetryPolicy::on_fault`, and a
            // guard that fails falls through to plain success.
            match rp.on_fault(respawns) {
                RetryDecision::Retry { backoff }
                    if self.rng.gen::<f64>() < self.params.fault_rate =>
                {
                    // Fails a uniform way through; OpenWhisk respawns it.
                    wasted += draw.mul_f64(self.rng.gen::<f64>());
                    wasted += self.warm.instantiation_cost(true, &mut self.rng);
                    wasted += backoff;
                    respawns += 1;
                    continue;
                }
                RetryDecision::GiveUp
                    if self.params.fault_rate > 0.0
                        && self.rng.gen::<f64>() < self.params.fault_rate =>
                {
                    // The final attempt also faulted and the policy allows
                    // giving up: report the invocation as failed.
                    wasted += draw.mul_f64(self.rng.gen::<f64>());
                    gave_up = true;
                    break SimDuration::ZERO;
                }
                _ => break draw,
            }
        };
        // Report the attempt outcome to the app's circuit breaker. The
        // retry loop resolves here (at the data-in instant), so breaker
        // timing is a pure function of event times — no RNG.
        if self.params.overload.breaker.is_some() {
            let probe = {
                let st = &mut self.invs[idx as usize];
                std::mem::replace(&mut st.probe, false)
            };
            let event = self.breakers.get_mut(&app).and_then(|b| {
                if gave_up {
                    b.record_failure(now, probe)
                } else {
                    b.record_success(now, probe)
                }
            });
            // Inlined note_breaker_event: `profile` still borrows
            // `self.apps`, so only disjoint fields may be touched here.
            if let Some(ev) = event {
                if ev == BreakerEvent::Opened {
                    self.shed_counters.breaker_opens += 1;
                }
                if self.tracer.is_enabled() {
                    let name = match ev {
                        BreakerEvent::Opened => overload::EV_BREAKER_OPEN,
                        BreakerEvent::HalfOpened => overload::EV_BREAKER_HALF_OPEN,
                        BreakerEvent::Closed => overload::EV_BREAKER_CLOSE,
                    };
                    self.tracer.instant(
                        overload::BREAKER_TRACE_CAT,
                        name,
                        app.0 as u32,
                        now,
                        vec![("app", ArgValue::U64(app.0 as u64))],
                    );
                }
            }
        }
        if gave_up {
            let attempts = respawns + 1;
            self.crash_stats.invocations_failed += 1;
            {
                let st = &mut self.invs[idx as usize];
                st.outcome = Outcome::Failed { attempts };
                st.breakdown.data_io += data_in;
                st.breakdown.exec = wasted;
            }
            if self.tracer.is_enabled() {
                let tag = self.invs[idx as usize].inv.tag;
                self.tracer.instant(
                    faults::TRACE_CAT,
                    faults::EV_INJECTED,
                    server,
                    now,
                    vec![
                        ("kind", ArgValue::Str("function_failed".into())),
                        ("tag", ArgValue::U64(tag)),
                        ("attempts", ArgValue::U64(attempts as u64)),
                    ],
                );
            }
            // No output to store; the container died with the attempt.
            self.push_event(now + data_in + wasted, Ev::Complete(idx));
            return;
        }

        // --- Straggler mitigation. ---
        let threshold = if self.params.straggler_mitigation {
            self.straggler_threshold(app)
        } else {
            None
        };
        let (exec_eff, straggled) = match threshold {
            Some(th) if final_exec > th => {
                let dup = profile.exec.sample(&mut self.rng);
                let capped = th + dup;
                if capped < final_exec {
                    (capped, true)
                } else {
                    (final_exec, false)
                }
            }
            _ => (final_exec, false),
        };
        if straggled {
            self.stragglers_mitigated += 1;
            let q = &mut self.straggler_events[server as usize];
            q.push_back(now);
            while q
                .front()
                .is_some_and(|&t| now.saturating_since(t) > self.params.probation_window)
            {
                q.pop_front();
            }
            if q.len() as u32 >= self.params.probation_threshold {
                self.probation_until[server as usize] = now + self.params.probation_duration;
                q.clear();
            }
        }
        let exec_total = wasted + exec_eff;
        let straggler_q = self.params.straggler_quantile;
        self.exec_history
            .entry(app)
            .or_insert_with(|| QuantileTracker::new(straggler_q))
            .record_duration(exec_eff);
        {
            let st = &mut self.invs[idx as usize];
            st.outcome = if respawns > 0 {
                self.faults_recovered += 1;
                Outcome::RecoveredFromFaults { respawns }
            } else if straggled {
                Outcome::MitigatedStraggler
            } else {
                Outcome::Ok
            };
            st.breakdown.data_io += data_in;
            st.breakdown.exec = exec_total;
        }
        if respawns > 0 && self.tracer.is_enabled() {
            let tag = self.invs[idx as usize].inv.tag;
            self.tracer.instant(
                faults::TRACE_CAT,
                faults::EV_RECOVERED,
                server,
                now,
                vec![
                    ("kind", ArgValue::Str("function_respawn".into())),
                    ("tag", ArgValue::U64(tag)),
                    ("respawns", ArgValue::U64(respawns as u64)),
                ],
            );
        }
        self.push_event(now + data_in + exec_total, Ev::DataOut(idx));
    }

    /// Execution finished: store the output, then complete.
    fn data_out_stage(&mut self, now: SimTime, idx: u32) {
        let app = self.invs[idx as usize].inv.app;
        let output_bytes = self.apps[&app].output_bytes;
        let data_out = if output_bytes > 0 {
            self.dataplane
                .exchange(now, self.params.exchange_out, output_bytes, &mut self.rng)
        } else {
            SimDuration::ZERO
        };
        self.invs[idx as usize].breakdown.data_io += data_out;
        self.push_event(now + data_out, Ev::Complete(idx));
    }

    fn complete(&mut self, now: SimTime, idx: u32) {
        let (server, app, tag) = {
            let st = &mut self.invs[idx as usize];
            debug_assert!(!st.done, "double completion");
            st.done = true;
            (st.server, st.inv.app, st.inv.tag)
        };
        self.set_busy(server, self.busy[server as usize] - 1);
        self.running -= 1;
        self.active_series.record(now, self.running as f64);
        if self.params.overload.admission.per_app_limit.is_some() {
            if let Some(n) = self.app_running.get_mut(&app) {
                *n = n.saturating_sub(1);
            }
        }
        if !matches!(self.invs[idx as usize].outcome, Outcome::Failed { .. }) {
            // A failed invocation's container died with it — nothing to
            // keep warm.
            self.warm.park(now, server, app);
        }
        if self.tracer.is_enabled() {
            self.tracer.counter(
                "faas",
                "server.busy",
                server,
                now,
                self.busy[server as usize] as f64,
            );
            self.sample_occupancy(now);
        }

        let st = &self.invs[idx as usize];
        self.completions.push(Completion {
            tag,
            app,
            server,
            arrived: st.arrived,
            finished: now,
            breakdown: st.breakdown,
            cold_start: st.cold,
            in_memory_exchange: st.in_memory,
            outcome: st.outcome,
        });

        self.drain_wait_queue(now);
    }

    /// Admits as many queued invocations as now fit. The placement
    /// decision is made once per head-of-queue invocation (`choose` draws
    /// no randomness, so deciding here and placing directly is exactly
    /// the old decide-then-re-decide behavior, minus the second pass).
    fn drain_wait_queue(&mut self, now: SimTime) {
        let overload_active = self.params.overload.is_active();
        while let Some(&head) = self.wait_queue.front() {
            if overload_active {
                // Deadline-aware drop: stale work is shed before it can
                // waste a core (its caller has long since given up).
                if let Some(deadline) = self.params.overload.admission.queue_deadline {
                    let waited = now.saturating_since(self.invs[head as usize].ready);
                    if waited > deadline {
                        self.wait_queue.pop_front();
                        self.shed(now, head, ShedReason::DeadlineExpired);
                        continue;
                    }
                }
                if let Some(limit) = self.params.overload.admission.per_app_limit {
                    let app = self.invs[head as usize].inv.app;
                    if self.app_running.get(&app).copied().unwrap_or(0) >= limit {
                        break;
                    }
                }
            }
            if self.running >= self.params.max_concurrent {
                break;
            }
            let Some(server) = self.choose_indexed(now, head) else {
                break;
            };
            self.wait_queue.pop_front();
            self.place(now, head, server);
        }
    }

    /// A scheduled crash fires: the server loses every in-flight
    /// invocation (each is resubmitted and rescheduled elsewhere) and its
    /// warm containers, and goes invisible to the scheduler until its
    /// recovery instant.
    fn crash_server(&mut self, now: SimTime, server: u32) {
        let pos = self
            .pending_recover
            .iter()
            .position(|&(s, _)| s == server)
            .expect("crash without a scheduled recovery");
        let (_, recover_at) = self.pending_recover.remove(pos);
        self.down_until[server as usize] = recover_at;
        self.crash_stats.server_crashes += 1;

        let mut resubmit = Vec::new();
        for st in self.invs.iter_mut() {
            if st.placed && !st.done && !st.aborted && st.server == server {
                st.aborted = true;
                // An unresolved probe dies with the server: its breaker
                // slot must be released so half-open doesn't wedge.
                let probe = std::mem::replace(&mut st.probe, false);
                resubmit.push((st.inv.clone(), probe));
            }
        }
        let lost = resubmit.len() as u32;
        debug_assert_eq!(lost, self.busy[server as usize], "core accounting");
        self.set_busy(server, 0);
        self.running -= lost;
        self.active_series.record(now, self.running as f64);
        self.warm.flush_server(server);
        self.crash_stats.invocations_lost += lost as u64;
        if self.tracer.is_enabled() {
            self.tracer.instant(
                faults::TRACE_CAT,
                faults::EV_INJECTED,
                server,
                now,
                vec![
                    ("kind", ArgValue::Str("server_crash".into())),
                    ("server", ArgValue::U64(server as u64)),
                    ("lost", ArgValue::U64(lost as u64)),
                ],
            );
            // The control plane notices immediately: its data-plane
            // connections to the server reset at the crash instant.
            self.tracer.instant(
                faults::TRACE_CAT,
                faults::EV_DETECTED,
                server,
                now,
                vec![("kind", ArgValue::Str("server_crash".into()))],
            );
            self.tracer.counter("faas", "server.busy", server, now, 0.0);
            self.sample_occupancy(now);
        }
        for (inv, probe) in resubmit {
            if self.params.overload.admission.per_app_limit.is_some() {
                if let Some(n) = self.app_running.get_mut(&inv.app) {
                    *n = n.saturating_sub(1);
                }
            }
            if probe {
                if let Some(b) = self.breakers.get_mut(&inv.app) {
                    b.release_probe();
                }
            }
            self.crash_stats.invocations_rescheduled += 1;
            self.submit(now, inv);
        }
    }

    /// A crashed server rejoins: it becomes schedulable again and the
    /// wait queue gets a chance to drain onto it.
    fn recover_server(&mut self, now: SimTime, server: u32) {
        if self.tracer.is_enabled() {
            self.tracer.instant(
                faults::TRACE_CAT,
                faults::EV_RECOVERED,
                server,
                now,
                vec![
                    ("kind", ArgValue::Str("server_crash".into())),
                    ("server", ArgValue::U64(server as u64)),
                ],
            );
        }
        self.drain_wait_queue(now);
    }

    /// The earliest internal event, if any.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Advances to `now`, returning completions that finished at or before
    /// `now` (chronological).
    pub fn advance_to(&mut self, now: SimTime) -> Vec<Completion> {
        self.pump_events(now);
        std::mem::take(&mut self.completions)
    }

    /// [`Cluster::advance_to`] into a caller-provided buffer; the internal
    /// completion buffer keeps its capacity, so a hot caller allocates
    /// nothing per advance.
    pub fn advance_into(&mut self, now: SimTime, out: &mut Vec<Completion>) {
        self.pump_events(now);
        out.append(&mut self.completions);
    }

    /// Runs every internal event due at or before `now`, accumulating
    /// completions in `self.completions`.
    fn pump_events(&mut self, now: SimTime) {
        while self.heap.peek().is_some_and(|Reverse((t, _, _))| *t <= now) {
            let Reverse((t, _, ev)) = self.heap.pop().expect("peeked event vanished");
            debug_assert!(t >= self.last_event_time);
            self.last_event_time = t;
            match ev {
                // Events of a crash-aborted invocation are dead letters:
                // the clone resubmitted at crash time carries on instead.
                Ev::Admit(idx) | Ev::DataIn(idx) | Ev::DataOut(idx) | Ev::Complete(idx)
                    if self.invs[idx as usize].aborted => {}
                Ev::Admit(idx) => self.admit(t, idx),
                Ev::DataIn(idx) => self.data_in_stage(t, idx),
                Ev::DataOut(idx) => self.data_out_stage(t, idx),
                Ev::Complete(idx) => self.complete(t, idx),
                Ev::Crash(server) => self.crash_server(t, server),
                Ev::Recover(server) => self.recover_server(t, server),
            }
        }
    }

    /// Functions currently executing.
    pub fn running(&self) -> u32 {
        self.running
    }

    /// Per-server core utilization in `[0, 1]` — what each node's worker
    /// monitor reports to the scheduler (Sec. 4.3: "a lightweight process
    /// that periodically monitors the performance of active functions,
    /// and the server's utilization").
    pub fn server_utilizations(&self) -> Vec<f64> {
        self.busy
            .iter()
            .map(|&b| b as f64 / self.params.cores_per_server as f64)
            .collect()
    }

    /// Servers currently on straggler probation at `now`.
    pub fn servers_on_probation(&self, now: SimTime) -> u32 {
        self.probation_until.iter().filter(|&&t| t > now).count() as u32
    }

    /// Invocations waiting for a free core.
    pub fn queued(&self) -> usize {
        self.wait_queue.len()
    }

    /// Time series of concurrently active functions (Fig. 5c).
    pub fn active_series(&self) -> &TimeSeries {
        &self.active_series
    }

    /// `(warm_hits, cold_misses)` of the container pool.
    pub fn container_stats(&self) -> (u64, u64) {
        self.warm.hit_stats()
    }

    /// Number of straggler respawns that won.
    pub fn stragglers_mitigated(&self) -> u64 {
        self.stragglers_mitigated
    }

    /// Number of invocations that recovered from injected faults.
    pub fn faults_recovered(&self) -> u64 {
        self.faults_recovered
    }

    /// Overload-plane shed and breaker-trip counters.
    pub fn overload_counters(&self) -> OverloadCounters {
        self.shed_counters
    }

    /// Total fail-fast (open or half-open) breaker time across all apps
    /// up to `now`; an open period still in progress counts up to `now`.
    pub fn breaker_open_time(&self, now: SimTime) -> SimDuration {
        self.breakers
            .values()
            .fold(SimDuration::ZERO, |acc, b| acc + b.total_open_time(now))
    }

    /// Mean unloaded latency of a root invocation of `app` under this
    /// configuration — used by the analytical cross-model.
    pub fn mean_unloaded_latency_secs(&self, app: AppId, warm_fraction: f64) -> f64 {
        let profile = &self.apps[&app];
        let p = &self.params;
        let inst = warm_fraction * p.container.warm_start.mean_secs()
            + (1.0 - warm_fraction) * p.container.cold_start.mean_secs();
        p.policy.management_cost().mean_secs()
            + inst
            + self
                .dataplane
                .mean_exchange_secs(p.exchange_in, profile.input_bytes)
            + profile.exec.mean_secs()
            + self
                .dataplane
                .mean_exchange_secs(p.exchange_out, profile.output_bytes)
    }
}

impl Component for Cluster {
    type Command = Invocation;
    type Output = Completion;

    fn handle(&mut self, now: SimTime, cmd: Invocation) {
        self.submit(now, cmd);
    }

    fn next_wakeup(&self) -> Option<SimTime> {
        Cluster::next_wakeup(self)
    }

    fn advance(&mut self, now: SimTime, out: &mut Vec<Completion>) {
        self.advance_into(now, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hivemind_sim::stats::Summary;

    fn run_all(cluster: &mut Cluster) -> Vec<Completion> {
        let mut done = Vec::new();
        while let Some(t) = cluster.next_wakeup() {
            done.extend(cluster.advance_to(t));
        }
        done
    }

    fn small_cluster(params: ClusterParams) -> Cluster {
        let mut c = Cluster::new(params, RngForge::new(42));
        c.register_app(AppId(0), AppProfile::test_profile(100.0));
        c
    }

    #[test]
    fn single_invocation_breakdown_sums() {
        let mut c = small_cluster(ClusterParams::default());
        c.submit(SimTime::ZERO, Invocation::root(AppId(0), 1));
        let done = run_all(&mut c);
        assert_eq!(done.len(), 1);
        let comp = &done[0];
        assert_eq!(comp.breakdown.total(), comp.latency());
        assert!(comp.cold_start, "first run must be a cold start");
        assert!(comp.breakdown.exec >= SimDuration::from_millis(100));
        assert!(comp.breakdown.management > SimDuration::ZERO);
        assert!(comp.breakdown.instantiation > SimDuration::from_millis(20));
    }

    #[test]
    fn second_invocation_hits_warm_container() {
        let mut c = small_cluster(ClusterParams::hivemind());
        c.submit(SimTime::ZERO, Invocation::root(AppId(0), 1));
        // Long after the first finishes but inside the 20 s keep-alive.
        c.submit(SimTime::from_secs(5), Invocation::root(AppId(0), 2));
        let done = run_all(&mut c);
        assert!(!done[1].cold_start, "keep-alive should give a warm hit");
        assert!(done[1].breakdown.instantiation < SimDuration::from_millis(30));
    }

    #[test]
    fn openwhisk_short_keepalive_goes_cold_again() {
        let mut c = small_cluster(ClusterParams::default());
        c.submit(SimTime::ZERO, Invocation::root(AppId(0), 1));
        c.submit(SimTime::from_secs(30), Invocation::root(AppId(0), 2));
        let done = run_all(&mut c);
        assert!(done[1].cold_start, "2 s keep-alive expired after 30 s");
    }

    #[test]
    fn saturation_queues_and_queueing_shows_in_breakdown() {
        let params = ClusterParams {
            servers: 1,
            cores_per_server: 2,
            ..ClusterParams::default()
        };
        let mut c = small_cluster(params);
        for tag in 0..6 {
            c.submit(SimTime::ZERO, Invocation::root(AppId(0), tag));
        }
        let done = run_all(&mut c);
        assert_eq!(done.len(), 6);
        let queued: Vec<_> = done
            .iter()
            .filter(|d| d.breakdown.queueing > SimDuration::ZERO)
            .collect();
        assert!(
            queued.len() >= 3,
            "with 2 cores and 6 tasks most must queue; queued = {}",
            queued.len()
        );
    }

    #[test]
    fn colocated_child_uses_in_memory_exchange() {
        let mut c = small_cluster(ClusterParams::hivemind());
        c.submit(SimTime::ZERO, Invocation::root(AppId(0), 1));
        let done = run_all(&mut c);
        let parent_server = done[0].server;
        c.submit(
            SimTime::from_secs(1),
            Invocation::child_of(AppId(0), 2, parent_server, true),
        );
        let done = run_all(&mut c);
        assert!(done[0].in_memory_exchange);
        assert!(!done[0].cold_start);
        // In-memory input fetch leaves only the (remote-memory) output
        // store in data_io — well under a millisecond in total.
        assert!(done[0].breakdown.data_io < SimDuration::from_millis(1));
    }

    #[test]
    fn faults_recover_and_inflate_exec() {
        let params = ClusterParams {
            fault_rate: 0.5,
            ..ClusterParams::default()
        };
        let mut c = small_cluster(params);
        for tag in 0..40 {
            c.submit(SimTime::from_secs(tag), Invocation::root(AppId(0), tag));
        }
        let done = run_all(&mut c);
        assert_eq!(done.len(), 40, "every faulted task must still complete");
        assert!(
            c.faults_recovered() > 5,
            "recovered {}",
            c.faults_recovered()
        );
        let recovered = done
            .iter()
            .find(|d| matches!(d.outcome, Outcome::RecoveredFromFaults { .. }))
            .expect("some task recovered");
        assert!(recovered.breakdown.exec > SimDuration::from_millis(100));
    }

    #[test]
    fn straggler_mitigation_caps_heavy_tail() {
        let heavy = AppProfile {
            name: "heavy-tail",
            exec: hivemind_sim::dist::Dist::bounded_pareto(0.05, 20.0, 1.1),
            input_bytes: 0,
            output_bytes: 0,
            memory_mb: 128,
        };
        let run = |mitigate: bool| -> f64 {
            let params = ClusterParams {
                straggler_mitigation: mitigate,
                exchange_in: ExchangeProtocol::InMemory,
                exchange_out: ExchangeProtocol::InMemory,
                ..ClusterParams::default()
            };
            let mut c = Cluster::new(params, RngForge::new(7));
            c.register_app(AppId(1), heavy.clone());
            for tag in 0..400 {
                c.submit(
                    SimTime::from_nanos(tag * 200_000_000),
                    Invocation::root(AppId(1), tag),
                );
            }
            let done = run_all(&mut c);
            let mut s = Summary::new();
            for d in &done {
                s.record_duration(d.breakdown.exec);
            }
            s.p99()
        };
        let unmitigated = run(false);
        let mitigated = run(true);
        assert!(
            mitigated < unmitigated * 0.8,
            "p99 exec should drop: {unmitigated} -> {mitigated}"
        );
    }

    #[test]
    fn active_series_tracks_concurrency() {
        let mut c = small_cluster(ClusterParams::default());
        for tag in 0..5 {
            c.submit(SimTime::ZERO, Invocation::root(AppId(0), tag));
        }
        let _ = run_all(&mut c);
        assert!(c.active_series().max() >= 5.0);
        assert_eq!(c.running(), 0);
        assert_eq!(c.queued(), 0);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unregistered_app_panics() {
        let mut c = Cluster::new(ClusterParams::default(), RngForge::new(1));
        c.submit(SimTime::ZERO, Invocation::root(AppId(9), 0));
    }

    #[test]
    fn concurrency_cap_respected() {
        let params = ClusterParams {
            max_concurrent: 3,
            ..ClusterParams::default()
        };
        let mut c = small_cluster(params);
        for tag in 0..10 {
            c.submit(SimTime::ZERO, Invocation::root(AppId(0), tag));
        }
        // Drive event by event, checking the invariant throughout.
        while let Some(t) = c.next_wakeup() {
            let _ = c.advance_to(t);
            assert!(c.running() <= 3, "cap violated: {}", c.running());
        }
    }

    #[test]
    fn bounded_queue_sheds_on_full_and_conserves() {
        let params = ClusterParams {
            max_concurrent: 2,
            overload: OverloadPolicy::default().queue_bound(1),
            ..ClusterParams::default()
        };
        let mut c = small_cluster(params);
        for tag in 0..10 {
            c.submit(SimTime::ZERO, Invocation::root(AppId(0), tag));
        }
        let mut done = Vec::new();
        while let Some(t) = c.next_wakeup() {
            done.extend(c.advance_to(t));
            assert!(c.queued() <= 1, "queue bound violated: {}", c.queued());
        }
        // Conservation: every submission resolves, as a run or a shed.
        assert_eq!(done.len(), 10);
        let shed = done
            .iter()
            .filter(|d| {
                matches!(
                    d.outcome,
                    Outcome::Shed {
                        reason: ShedReason::QueueFull
                    }
                )
            })
            .count();
        assert!(shed >= 6, "2 cores + 1 slot must shed most of 10: {shed}");
        // Shed invocations never touch a core or the data plane.
        for d in done
            .iter()
            .filter(|d| matches!(d.outcome, Outcome::Shed { .. }))
        {
            assert_eq!(d.breakdown.exec, SimDuration::ZERO);
            assert_eq!(d.breakdown.data_io, SimDuration::ZERO);
            assert_eq!(d.breakdown.instantiation, SimDuration::ZERO);
        }
    }

    #[test]
    fn queue_deadline_sheds_stale_work() {
        let params = ClusterParams {
            max_concurrent: 1,
            overload: OverloadPolicy::default().queue_deadline(SimDuration::from_millis(50)),
            ..ClusterParams::default()
        };
        let mut c = small_cluster(params);
        for tag in 0..5 {
            c.submit(SimTime::ZERO, Invocation::root(AppId(0), tag));
        }
        let done = run_all(&mut c);
        assert_eq!(done.len(), 5);
        let expired = done
            .iter()
            .filter(|d| {
                matches!(
                    d.outcome,
                    Outcome::Shed {
                        reason: ShedReason::DeadlineExpired
                    }
                )
            })
            .count();
        // 100 ms exec serialized on one slot: everything queued behind
        // the first completion has waited > 50 ms already.
        assert!(expired >= 3, "stale entries must shed: {expired}");
        assert_eq!(c.overload_counters().shed_deadline, expired as u64);
    }

    #[test]
    fn breaker_opens_and_fails_fast() {
        let params = ClusterParams {
            fault_rate: 1.0,
            retry: RetryPolicy::bounded(2, SimDuration::ZERO),
            overload: OverloadPolicy::default().breaker(3, SimDuration::from_secs(5)),
            ..ClusterParams::default()
        };
        let mut c = small_cluster(params);
        for tag in 0..10 {
            c.submit(SimTime::from_secs(tag), Invocation::root(AppId(0), tag));
        }
        let done = run_all(&mut c);
        assert_eq!(done.len(), 10, "failed and shed invocations complete");
        let counters = c.overload_counters();
        assert!(counters.breaker_opens >= 1, "breaker must trip");
        assert!(
            counters.shed_breaker >= 3,
            "an open breaker fails fast: {}",
            counters.shed_breaker
        );
        assert!(
            c.breaker_open_time(SimTime::from_secs(30)) > SimDuration::ZERO,
            "open time is accounted"
        );
        let failed = done
            .iter()
            .filter(|d| matches!(d.outcome, Outcome::Failed { .. }))
            .count();
        let shed = done
            .iter()
            .filter(|d| matches!(d.outcome, Outcome::Shed { .. }))
            .count();
        assert_eq!(failed + shed, 10, "all-faulting cluster: fail or shed");
    }

    #[test]
    fn per_app_limit_caps_concurrency() {
        let params = ClusterParams {
            overload: OverloadPolicy::default().per_app_limit(2),
            ..ClusterParams::default()
        };
        let mut c = small_cluster(params);
        for tag in 0..8 {
            c.submit(SimTime::ZERO, Invocation::root(AppId(0), tag));
        }
        let mut done = Vec::new();
        while let Some(t) = c.next_wakeup() {
            done.extend(c.advance_to(t));
            assert!(c.running() <= 2, "per-app cap violated: {}", c.running());
        }
        assert_eq!(done.len(), 8, "the limit queues, it never drops");
        assert_eq!(c.overload_counters().shed_total(), 0);
    }

    #[test]
    fn mean_unloaded_latency_is_sane() {
        let c = small_cluster(ClusterParams::default());
        let m = c.mean_unloaded_latency_secs(AppId(0), 0.5);
        // 100 ms exec + management + ~60 ms mixed instantiation + data I/O.
        assert!(m > 0.1 && m < 0.5, "mean {m}");
    }
}

//! Data exchange between dependent serverless functions.
//!
//! OpenWhisk (like AWS Lambda with S3) forbids direct function-to-function
//! communication: a parent's output goes to CouchDB and the child fetches
//! it through the controller. Fig. 6c compares that default against direct
//! RPC and in-memory exchange; HiveMind's remote-memory fabric (Sec. 4.4)
//! replaces the database with FPGA-served RDMA while *preserving* the
//! serverless abstraction — the child addresses a virtualized object, not
//! a physical host.

use hivemind_accel::remote_mem::{RemoteMemoryFabric, RemoteMemoryParams};
use hivemind_net::rpc::RpcProfile;
use hivemind_sim::dist::Dist;
use hivemind_sim::time::{SimDuration, SimTime};
use rand::Rng;

// The retry/timeout/backoff policy governing failed data-plane attempts
// is part of the fault-injection vocabulary; re-exported here because the
// data plane (input fetch / execution / output store) is where it applies.
pub use hivemind_sim::faults::RetryPolicy;

/// The protocol used for one exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExchangeProtocol {
    /// OpenWhisk default: write to + read from CouchDB via the controller.
    CouchDb,
    /// Direct RPC between the two containers (requires knowing the peer —
    /// breaks the pure serverless abstraction; shown in Fig. 6c).
    DirectRpc,
    /// Child colocated in the parent's container: shared virtual memory.
    InMemory,
    /// HiveMind's FPGA remote-memory fabric.
    RemoteMemory,
}

/// A single-server CouchDB instance with FIFO queueing.
///
/// Every exchange performs a controller round-trip to obtain the object
/// handle, then a store operation whose duration scales with object size.
/// Because one database serves the whole cluster, concurrent multi-tier
/// jobs queue up — the source of the protocol's tail blow-up in Fig. 6c.
#[derive(Debug, Clone, PartialEq)]
pub struct CouchDbModel {
    /// Controller round-trip to resolve the object handle.
    pub controller_rtt: Dist,
    /// Fixed per-operation DB cost (indexing, MVCC bookkeeping).
    pub op_overhead: Dist,
    /// Effective storage bandwidth, bytes/s.
    pub bytes_per_sec: f64,
    busy_until: SimTime,
}

impl Default for CouchDbModel {
    fn default() -> Self {
        CouchDbModel {
            controller_rtt: Dist::lognormal_median_sigma(1.2e-3, 0.35),
            op_overhead: Dist::lognormal_median_sigma(1.0e-3, 0.40),
            // A production (clustered, Cloudant-style) CouchDB deployment:
            // three data nodes behind the controller.
            bytes_per_sec: 600e6,
            busy_until: SimTime::ZERO,
        }
    }
}

impl CouchDbModel {
    /// Performs one store-or-fetch of `bytes` at `now`, returning its
    /// latency including queueing behind other operations.
    pub fn operate<R: Rng + ?Sized>(
        &mut self,
        now: SimTime,
        bytes: u64,
        rng: &mut R,
    ) -> SimDuration {
        let service = self.op_overhead.sample(rng)
            + SimDuration::from_secs_f64(bytes as f64 / self.bytes_per_sec);
        let start = self.busy_until.max(now);
        self.busy_until = start + service;
        let rtt = self.controller_rtt.sample(rng);
        (self.busy_until - now) + rtt
    }

    /// Mean unloaded operation latency, for the analytical model.
    pub fn mean_secs(&self, bytes: u64) -> f64 {
        self.controller_rtt.mean_secs()
            + self.op_overhead.mean_secs()
            + bytes as f64 / self.bytes_per_sec
    }
}

/// The function-to-function data plane.
///
/// # Examples
///
/// ```rust
/// use hivemind_faas::dataplane::{DataPlane, ExchangeProtocol};
/// use hivemind_sim::rng::RngForge;
/// use hivemind_sim::time::SimTime;
///
/// let mut plane = DataPlane::new();
/// let mut rng = RngForge::new(1).stream("dp");
/// let db = plane.exchange(SimTime::ZERO, ExchangeProtocol::CouchDb, 100_000, &mut rng);
/// let mem = plane.exchange(SimTime::ZERO, ExchangeProtocol::InMemory, 100_000, &mut rng);
/// assert!(db > mem * 10); // Fig. 6c ordering
/// ```
#[derive(Debug)]
pub struct DataPlane {
    couchdb: CouchDbModel,
    rpc: RpcProfile,
    remote: RemoteMemoryFabric,
    /// Intra-cluster wire bandwidth for direct RPC payloads (10 GbE).
    rpc_wire_bytes_per_sec: f64,
    /// Shared-memory copy bandwidth for the in-memory path.
    mem_bytes_per_sec: f64,
}

impl Default for DataPlane {
    fn default() -> Self {
        Self::new()
    }
}

impl DataPlane {
    /// Creates a data plane with paper-calibrated defaults (single-board
    /// remote-memory fabric).
    pub fn new() -> Self {
        Self::for_cluster(1)
    }

    /// Creates a data plane for a cluster of `servers`, each carrying its
    /// own FPGA board (the remote-memory fabric's concurrency scales with
    /// the fleet; the CouchDB instance deliberately does not — it is the
    /// centralized bottleneck the paper identifies).
    pub fn for_cluster(servers: u32) -> Self {
        DataPlane {
            couchdb: CouchDbModel::default(),
            rpc: RpcProfile::software(),
            remote: RemoteMemoryFabric::new(RemoteMemoryParams {
                max_concurrent: 8 * servers.max(1),
                ..RemoteMemoryParams::default()
            }),
            rpc_wire_bytes_per_sec: 10e9 / 8.0,
            mem_bytes_per_sec: 20e9,
        }
    }

    /// Latency of exchanging an object of `bytes` over `protocol` at `now`.
    pub fn exchange<R: Rng + ?Sized>(
        &mut self,
        now: SimTime,
        protocol: ExchangeProtocol,
        bytes: u64,
        rng: &mut R,
    ) -> SimDuration {
        match protocol {
            ExchangeProtocol::CouchDb => {
                // Parent stores, child fetches: two back-to-back DB
                // operations, entered as one queue visit so the shared
                // DB's backlog accounting stays chronological.
                let store = self.couchdb.operate(now, bytes, rng);
                let fetch = self.couchdb.operate(now, bytes, rng);
                store.max(fetch) + self.couchdb.controller_rtt.sample(rng)
            }
            ExchangeProtocol::DirectRpc => {
                let host = self.rpc.send_cost(rng, bytes) + self.rpc.recv_cost(rng, bytes);
                host + SimDuration::from_secs_f64(bytes as f64 / self.rpc_wire_bytes_per_sec)
            }
            ExchangeProtocol::InMemory => {
                // The child reads the parent's pages in place; charge one
                // pass of memory bandwidth plus a scheduling epsilon.
                SimDuration::from_micros(20)
                    + SimDuration::from_secs_f64(bytes as f64 / self.mem_bytes_per_sec)
            }
            ExchangeProtocol::RemoteMemory => self.remote.access(now, bytes, rng),
        }
    }

    /// Mean unloaded exchange latency, for the analytical model.
    pub fn mean_exchange_secs(&self, protocol: ExchangeProtocol, bytes: u64) -> f64 {
        match protocol {
            ExchangeProtocol::CouchDb => 2.0 * self.couchdb.mean_secs(bytes),
            ExchangeProtocol::DirectRpc => {
                self.rpc.mean_one_way_secs(bytes) + bytes as f64 / self.rpc_wire_bytes_per_sec
            }
            ExchangeProtocol::InMemory => 20e-6 + bytes as f64 / self.mem_bytes_per_sec,
            ExchangeProtocol::RemoteMemory => self.remote.mean_access_secs(bytes),
        }
    }

    /// The CouchDB model (e.g. to inspect queueing state in tests).
    pub fn couchdb(&self) -> &CouchDbModel {
        &self.couchdb
    }

    /// The remote-memory fabric accounting.
    pub fn remote_fabric(&self) -> &RemoteMemoryFabric {
        &self.remote
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hivemind_sim::rng::RngForge;

    fn mean_latency(p: ExchangeProtocol, bytes: u64, contended: bool) -> f64 {
        let mut plane = DataPlane::new();
        let mut rng = RngForge::new(11).stream("dp");
        let n = 100;
        let mut total = 0.0;
        for i in 0..n {
            // Contended: all at t=0. Uncontended: spaced 1 s apart.
            let t = if contended {
                SimTime::ZERO
            } else {
                SimTime::from_secs(i)
            };
            total += plane.exchange(t, p, bytes, &mut rng).as_secs_f64();
        }
        total / n as f64
    }

    #[test]
    fn fig6c_protocol_ordering() {
        let db = mean_latency(ExchangeProtocol::CouchDb, 100_000, false);
        let rpc = mean_latency(ExchangeProtocol::DirectRpc, 100_000, false);
        let mem = mean_latency(ExchangeProtocol::InMemory, 100_000, false);
        let rdma = mean_latency(ExchangeProtocol::RemoteMemory, 100_000, false);
        assert!(db > rpc, "CouchDB {db} should exceed RPC {rpc}");
        assert!(rpc > mem, "RPC {rpc} should exceed in-memory {mem}");
        assert!(rdma < db / 10.0, "remote memory {rdma} ≪ CouchDB {db}");
        assert!(rdma < rpc, "remote memory {rdma} < RPC {rpc}");
    }

    #[test]
    fn couchdb_contention_inflates_tail() {
        let calm = mean_latency(ExchangeProtocol::CouchDb, 500_000, false);
        let storm = mean_latency(ExchangeProtocol::CouchDb, 500_000, true);
        assert!(storm > calm * 3.0, "contended {storm} vs calm {calm}");
    }

    #[test]
    fn in_memory_is_sub_millisecond_for_small_objects() {
        let mem = mean_latency(ExchangeProtocol::InMemory, 10_000, false);
        assert!(mem < 1e-3);
    }

    #[test]
    fn mean_model_tracks_simulation_unloaded() {
        let plane = DataPlane::new();
        for p in [
            ExchangeProtocol::CouchDb,
            ExchangeProtocol::DirectRpc,
            ExchangeProtocol::InMemory,
            ExchangeProtocol::RemoteMemory,
        ] {
            let analytic = plane.mean_exchange_secs(p, 100_000);
            let simulated = mean_latency(p, 100_000, false);
            let ratio = simulated / analytic;
            assert!(
                (0.5..2.0).contains(&ratio),
                "{p:?}: analytic {analytic} vs simulated {simulated}"
            );
        }
    }

    #[test]
    fn couchdb_scales_with_bytes() {
        let small = mean_latency(ExchangeProtocol::CouchDb, 1_000, false);
        let large = mean_latency(ExchangeProtocol::CouchDb, 50_000_000, false);
        assert!(large > small + 0.15, "50 MB should add ~0.17 s at 600 MB/s");
    }
}

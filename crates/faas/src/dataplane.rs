//! Data exchange between dependent serverless functions.
//!
//! OpenWhisk (like AWS Lambda with S3) forbids direct function-to-function
//! communication: a parent's output goes to CouchDB and the child fetches
//! it through the controller. Fig. 6c compares that default against direct
//! RPC and in-memory exchange; HiveMind's remote-memory fabric (Sec. 4.4)
//! replaces the database with FPGA-served RDMA while *preserving* the
//! serverless abstraction — the child addresses a virtualized object, not
//! a physical host.

use hivemind_accel::remote_mem::{RemoteMemoryFabric, RemoteMemoryParams};
use hivemind_net::rpc::RpcProfile;
use hivemind_sim::dist::Dist;
use hivemind_sim::time::{SimDuration, SimTime};
use rand::Rng;

// The retry/timeout/backoff policy governing failed data-plane attempts
// is part of the fault-injection vocabulary; re-exported here because the
// data plane (input fetch / execution / output store) is where it applies.
pub use hivemind_sim::faults::{RetryDecision, RetryPolicy};

/// The protocol used for one exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExchangeProtocol {
    /// OpenWhisk default: write to + read from CouchDB via the controller.
    CouchDb,
    /// Direct RPC between the two containers (requires knowing the peer —
    /// breaks the pure serverless abstraction; shown in Fig. 6c).
    DirectRpc,
    /// Child colocated in the parent's container: shared virtual memory.
    InMemory,
    /// HiveMind's FPGA remote-memory fabric.
    RemoteMemory,
}

/// A single-server CouchDB instance with FIFO queueing.
///
/// Every exchange performs a controller round-trip to obtain the object
/// handle, then a store operation whose duration scales with object size.
/// Because one database serves the whole cluster, concurrent multi-tier
/// jobs queue up — the source of the protocol's tail blow-up in Fig. 6c.
#[derive(Debug, Clone, PartialEq)]
pub struct CouchDbModel {
    /// Controller round-trip to resolve the object handle.
    pub controller_rtt: Dist,
    /// Fixed per-operation DB cost (indexing, MVCC bookkeeping).
    pub op_overhead: Dist,
    /// Effective storage bandwidth, bytes/s.
    pub bytes_per_sec: f64,
    busy_until: SimTime,
}

impl Default for CouchDbModel {
    fn default() -> Self {
        CouchDbModel {
            controller_rtt: Dist::lognormal_median_sigma(1.2e-3, 0.35),
            op_overhead: Dist::lognormal_median_sigma(1.0e-3, 0.40),
            // A production (clustered, Cloudant-style) CouchDB deployment:
            // three data nodes behind the controller.
            bytes_per_sec: 600e6,
            busy_until: SimTime::ZERO,
        }
    }
}

impl CouchDbModel {
    /// Performs one store-or-fetch of `bytes` at `now`, returning its
    /// latency including queueing behind other operations.
    pub fn operate<R: Rng + ?Sized>(
        &mut self,
        now: SimTime,
        bytes: u64,
        rng: &mut R,
    ) -> SimDuration {
        let service = self.op_overhead.sample(rng)
            + SimDuration::from_secs_f64(bytes as f64 / self.bytes_per_sec);
        let start = self.busy_until.max(now);
        self.busy_until = start + service;
        let rtt = self.controller_rtt.sample(rng);
        (self.busy_until - now) + rtt
    }

    /// Mean unloaded operation latency, for the analytical model.
    pub fn mean_secs(&self, bytes: u64) -> f64 {
        self.controller_rtt.mean_secs()
            + self.op_overhead.mean_secs()
            + bytes as f64 / self.bytes_per_sec
    }
}

/// The function-to-function data plane.
///
/// # Examples
///
/// ```rust
/// use hivemind_faas::dataplane::{DataPlane, ExchangeProtocol};
/// use hivemind_sim::rng::RngForge;
/// use hivemind_sim::time::SimTime;
///
/// let mut plane = DataPlane::new();
/// let mut rng = RngForge::new(1).stream("dp");
/// let db = plane.exchange(SimTime::ZERO, ExchangeProtocol::CouchDb, 100_000, &mut rng);
/// let mem = plane.exchange(SimTime::ZERO, ExchangeProtocol::InMemory, 100_000, &mut rng);
/// assert!(db > mem * 10); // Fig. 6c ordering
/// ```
#[derive(Debug)]
pub struct DataPlane {
    couchdb: CouchDbModel,
    rpc: RpcProfile,
    remote: RemoteMemoryFabric,
    /// Intra-cluster wire bandwidth for direct RPC payloads (10 GbE).
    rpc_wire_bytes_per_sec: f64,
    /// Shared-memory copy bandwidth for the in-memory path.
    mem_bytes_per_sec: f64,
}

impl Default for DataPlane {
    fn default() -> Self {
        Self::new()
    }
}

impl DataPlane {
    /// Creates a data plane with paper-calibrated defaults (single-board
    /// remote-memory fabric).
    pub fn new() -> Self {
        Self::for_cluster(1)
    }

    /// Creates a data plane for a cluster of `servers`, each carrying its
    /// own FPGA board (the remote-memory fabric's concurrency scales with
    /// the fleet; the CouchDB instance deliberately does not — it is the
    /// centralized bottleneck the paper identifies).
    pub fn for_cluster(servers: u32) -> Self {
        DataPlane {
            couchdb: CouchDbModel::default(),
            rpc: RpcProfile::software(),
            remote: RemoteMemoryFabric::new(RemoteMemoryParams {
                max_concurrent: 8 * servers.max(1),
                ..RemoteMemoryParams::default()
            }),
            rpc_wire_bytes_per_sec: 10e9 / 8.0,
            mem_bytes_per_sec: 20e9,
        }
    }

    /// Latency of exchanging an object of `bytes` over `protocol` at `now`.
    pub fn exchange<R: Rng + ?Sized>(
        &mut self,
        now: SimTime,
        protocol: ExchangeProtocol,
        bytes: u64,
        rng: &mut R,
    ) -> SimDuration {
        match protocol {
            ExchangeProtocol::CouchDb => {
                // Parent stores, child fetches: two back-to-back DB
                // operations, entered as one queue visit so the shared
                // DB's backlog accounting stays chronological.
                let store = self.couchdb.operate(now, bytes, rng);
                let fetch = self.couchdb.operate(now, bytes, rng);
                store.max(fetch) + self.couchdb.controller_rtt.sample(rng)
            }
            ExchangeProtocol::DirectRpc => {
                let host = self.rpc.send_cost(rng, bytes) + self.rpc.recv_cost(rng, bytes);
                host + SimDuration::from_secs_f64(bytes as f64 / self.rpc_wire_bytes_per_sec)
            }
            ExchangeProtocol::InMemory => {
                // The child reads the parent's pages in place; charge one
                // pass of memory bandwidth plus a scheduling epsilon.
                SimDuration::from_micros(20)
                    + SimDuration::from_secs_f64(bytes as f64 / self.mem_bytes_per_sec)
            }
            ExchangeProtocol::RemoteMemory => self.remote.access(now, bytes, rng),
        }
    }

    /// Mean unloaded exchange latency, for the analytical model.
    pub fn mean_exchange_secs(&self, protocol: ExchangeProtocol, bytes: u64) -> f64 {
        match protocol {
            ExchangeProtocol::CouchDb => 2.0 * self.couchdb.mean_secs(bytes),
            ExchangeProtocol::DirectRpc => {
                self.rpc.mean_one_way_secs(bytes) + bytes as f64 / self.rpc_wire_bytes_per_sec
            }
            ExchangeProtocol::InMemory => 20e-6 + bytes as f64 / self.mem_bytes_per_sec,
            ExchangeProtocol::RemoteMemory => self.remote.mean_access_secs(bytes),
        }
    }

    /// The CouchDB model (e.g. to inspect queueing state in tests).
    pub fn couchdb(&self) -> &CouchDbModel {
        &self.couchdb
    }

    /// The remote-memory fabric accounting.
    pub fn remote_fabric(&self) -> &RemoteMemoryFabric {
        &self.remote
    }

    /// A logical exchange session over `protocol`: CouchDB persists the
    /// stored object across store-node crashes; the in-memory, RPC and
    /// remote-memory paths hold it in volatile state that a crash wipes.
    pub fn session(protocol: ExchangeProtocol, retry: RetryPolicy) -> ExchangeSession {
        ExchangeSession::new(retry, protocol == ExchangeProtocol::CouchDb)
    }
}

/// A message on the wire between parent, store and child.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ExchangeMsg {
    /// Parent → store: persist the output object.
    StoreReq,
    /// Store → parent: object persisted.
    StoreAck,
    /// Child → store: fetch the input object.
    FetchReq,
    /// Store → child: the object.
    FetchResp,
    /// Store → child: not stored (yet).
    FetchMiss,
}

/// A side effect requested by [`ExchangeSession::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExchangeEffect {
    /// Put a message on the wire (the environment decides its fate:
    /// deliver, duplicate, drop).
    Send(ExchangeMsg),
    /// Launch the child function with the fetched input.
    RunChild,
}

/// An input the environment feeds into the session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExchangeInput {
    /// A message arrived (possibly duplicated or reordered).
    Deliver(ExchangeMsg),
    /// The parent's retransmit timer fired (no ack yet).
    ParentTimer,
    /// The child's retransmit timer fired (no response yet).
    ChildTimer,
    /// The storage node crashed and restarted.
    StoreCrash,
}

/// One parent→child data handoff lifted to a pure message-passing state
/// machine.
///
/// The latency models above price an exchange; this machine captures its
/// *logic* — store, ack, fetch, retransmit, give-up — as a step function
/// with no RNG and no clock, so the same protocol code runs under the
/// DES engine and under exhaustive exploration by the model checker
/// (`hivemind_sim::mc`). The invariant that matters is exactly-once
/// execution: however the environment interleaves, duplicates or drops
/// messages and crashes the store, the child must run at most once (and,
/// absent give-up, at least once eventually).
#[derive(Debug, Clone, PartialEq)]
pub struct ExchangeSession {
    retry: RetryPolicy,
    /// The store survives [`ExchangeInput::StoreCrash`] (CouchDB); a
    /// volatile store loses the object.
    durable: bool,
    /// Deduplicate redundant `FetchResp` deliveries (the correct
    /// protocol). Disabled only by the planted-bug mutation hook.
    dedup: bool,
    stored: bool,
    acked: bool,
    delivered: bool,
    executed: u32,
    store_sends: u32,
    fetch_sends: u32,
    failed: bool,
}

impl std::hash::Hash for ExchangeSession {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // RetryPolicy carries f64 knobs, so it cannot derive Hash; its
        // bits are hashed explicitly (NaN never occurs in configured
        // policies, and bitwise equality is the determinism contract).
        self.retry.max_attempts.hash(state);
        self.retry.timeout.map(|t| t.as_nanos()).hash(state);
        self.retry.backoff_base.as_nanos().hash(state);
        self.retry.backoff_factor.to_bits().hash(state);
        self.retry.backoff_max.as_nanos().hash(state);
        self.retry.give_up.hash(state);
        self.durable.hash(state);
        self.dedup.hash(state);
        self.stored.hash(state);
        self.acked.hash(state);
        self.delivered.hash(state);
        self.executed.hash(state);
        self.store_sends.hash(state);
        self.fetch_sends.hash(state);
        self.failed.hash(state);
    }
}

impl ExchangeSession {
    /// A fresh session governed by `retry`; `durable` selects whether
    /// the store survives crashes.
    pub fn new(retry: RetryPolicy, durable: bool) -> ExchangeSession {
        ExchangeSession {
            retry,
            durable,
            dedup: true,
            stored: false,
            acked: false,
            delivered: false,
            executed: 0,
            store_sends: 0,
            fetch_sends: 0,
            failed: false,
        }
    }

    /// Planted-bug mutation hook: disables `FetchResp` deduplication so
    /// a duplicated response runs the child twice. Exists to prove the
    /// model-checking lane has teeth — the checker must produce a
    /// counterexample for this variant.
    pub fn without_dedup(mut self) -> ExchangeSession {
        self.dedup = false;
        self
    }

    /// Emits the opening sends (parent stores, child fetches — the fetch
    /// can race ahead of the store, which is why `FetchMiss` exists).
    pub fn start(&mut self, out: &mut Vec<ExchangeEffect>) {
        self.store_sends = 1;
        self.fetch_sends = 1;
        out.push(ExchangeEffect::Send(ExchangeMsg::StoreReq));
        out.push(ExchangeEffect::Send(ExchangeMsg::FetchReq));
    }

    /// Advances the machine by one input, appending requested effects.
    pub fn step(&mut self, input: ExchangeInput, out: &mut Vec<ExchangeEffect>) {
        if self.failed {
            return;
        }
        match input {
            ExchangeInput::Deliver(ExchangeMsg::StoreReq) => {
                self.stored = true;
                out.push(ExchangeEffect::Send(ExchangeMsg::StoreAck));
            }
            ExchangeInput::Deliver(ExchangeMsg::StoreAck) => {
                self.acked = true;
            }
            ExchangeInput::Deliver(ExchangeMsg::FetchReq) => {
                let reply = if self.stored {
                    ExchangeMsg::FetchResp
                } else {
                    ExchangeMsg::FetchMiss
                };
                out.push(ExchangeEffect::Send(reply));
            }
            ExchangeInput::Deliver(ExchangeMsg::FetchResp) => {
                if self.delivered && self.dedup {
                    return; // redundant retransmission: drop it
                }
                self.delivered = true;
                self.executed += 1;
                out.push(ExchangeEffect::RunChild);
            }
            ExchangeInput::Deliver(ExchangeMsg::FetchMiss) => {
                self.retransmit_fetch(out);
            }
            ExchangeInput::ParentTimer => {
                if !self.acked {
                    match self.retry.on_fault(self.store_sends.saturating_sub(1)) {
                        RetryDecision::Retry { .. } | RetryDecision::ForceSuccess => {
                            self.store_sends += 1;
                            out.push(ExchangeEffect::Send(ExchangeMsg::StoreReq));
                        }
                        RetryDecision::GiveUp => self.failed = true,
                    }
                }
            }
            ExchangeInput::ChildTimer => {
                if !self.delivered {
                    self.retransmit_fetch(out);
                }
            }
            ExchangeInput::StoreCrash => {
                if !self.durable {
                    self.stored = false;
                }
            }
        }
    }

    fn retransmit_fetch(&mut self, out: &mut Vec<ExchangeEffect>) {
        if self.delivered {
            return;
        }
        match self.retry.on_fault(self.fetch_sends.saturating_sub(1)) {
            RetryDecision::Retry { .. } | RetryDecision::ForceSuccess => {
                self.fetch_sends += 1;
                out.push(ExchangeEffect::Send(ExchangeMsg::FetchReq));
            }
            RetryDecision::GiveUp => self.failed = true,
        }
    }

    /// Times the child has been launched (the exactly-once invariant is
    /// `executed() <= 1`).
    pub fn executed(&self) -> u32 {
        self.executed
    }

    /// Whether the object is currently in the store.
    pub fn stored(&self) -> bool {
        self.stored
    }

    /// Whether the parent has seen its ack.
    pub fn acked(&self) -> bool {
        self.acked
    }

    /// Whether the child has received the object.
    pub fn delivered(&self) -> bool {
        self.delivered
    }

    /// Whether a bounded policy exhausted its attempts and gave up.
    pub fn failed(&self) -> bool {
        self.failed
    }

    /// `StoreReq` transmissions so far.
    pub fn store_sends(&self) -> u32 {
        self.store_sends
    }

    /// `FetchReq` transmissions so far.
    pub fn fetch_sends(&self) -> u32 {
        self.fetch_sends
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hivemind_sim::rng::RngForge;

    fn mean_latency(p: ExchangeProtocol, bytes: u64, contended: bool) -> f64 {
        let mut plane = DataPlane::new();
        let mut rng = RngForge::new(11).stream("dp");
        let n = 100;
        let mut total = 0.0;
        for i in 0..n {
            // Contended: all at t=0. Uncontended: spaced 1 s apart.
            let t = if contended {
                SimTime::ZERO
            } else {
                SimTime::from_secs(i)
            };
            total += plane.exchange(t, p, bytes, &mut rng).as_secs_f64();
        }
        total / n as f64
    }

    #[test]
    fn fig6c_protocol_ordering() {
        let db = mean_latency(ExchangeProtocol::CouchDb, 100_000, false);
        let rpc = mean_latency(ExchangeProtocol::DirectRpc, 100_000, false);
        let mem = mean_latency(ExchangeProtocol::InMemory, 100_000, false);
        let rdma = mean_latency(ExchangeProtocol::RemoteMemory, 100_000, false);
        assert!(db > rpc, "CouchDB {db} should exceed RPC {rpc}");
        assert!(rpc > mem, "RPC {rpc} should exceed in-memory {mem}");
        assert!(rdma < db / 10.0, "remote memory {rdma} ≪ CouchDB {db}");
        assert!(rdma < rpc, "remote memory {rdma} < RPC {rpc}");
    }

    #[test]
    fn couchdb_contention_inflates_tail() {
        let calm = mean_latency(ExchangeProtocol::CouchDb, 500_000, false);
        let storm = mean_latency(ExchangeProtocol::CouchDb, 500_000, true);
        assert!(storm > calm * 3.0, "contended {storm} vs calm {calm}");
    }

    #[test]
    fn in_memory_is_sub_millisecond_for_small_objects() {
        let mem = mean_latency(ExchangeProtocol::InMemory, 10_000, false);
        assert!(mem < 1e-3);
    }

    #[test]
    fn mean_model_tracks_simulation_unloaded() {
        let plane = DataPlane::new();
        for p in [
            ExchangeProtocol::CouchDb,
            ExchangeProtocol::DirectRpc,
            ExchangeProtocol::InMemory,
            ExchangeProtocol::RemoteMemory,
        ] {
            let analytic = plane.mean_exchange_secs(p, 100_000);
            let simulated = mean_latency(p, 100_000, false);
            let ratio = simulated / analytic;
            assert!(
                (0.5..2.0).contains(&ratio),
                "{p:?}: analytic {analytic} vs simulated {simulated}"
            );
        }
    }

    #[test]
    fn couchdb_scales_with_bytes() {
        let small = mean_latency(ExchangeProtocol::CouchDb, 1_000, false);
        let large = mean_latency(ExchangeProtocol::CouchDb, 50_000_000, false);
        assert!(large > small + 0.15, "50 MB should add ~0.17 s at 600 MB/s");
    }

    #[test]
    fn session_happy_path_runs_child_once() {
        let mut s = DataPlane::session(ExchangeProtocol::CouchDb, RetryPolicy::default());
        let mut out = Vec::new();
        s.start(&mut out);
        assert_eq!(
            out,
            vec![
                ExchangeEffect::Send(ExchangeMsg::StoreReq),
                ExchangeEffect::Send(ExchangeMsg::FetchReq),
            ]
        );
        out.clear();
        s.step(ExchangeInput::Deliver(ExchangeMsg::StoreReq), &mut out);
        assert_eq!(out, vec![ExchangeEffect::Send(ExchangeMsg::StoreAck)]);
        out.clear();
        s.step(ExchangeInput::Deliver(ExchangeMsg::StoreAck), &mut out);
        s.step(ExchangeInput::Deliver(ExchangeMsg::FetchReq), &mut out);
        assert_eq!(out, vec![ExchangeEffect::Send(ExchangeMsg::FetchResp)]);
        out.clear();
        s.step(ExchangeInput::Deliver(ExchangeMsg::FetchResp), &mut out);
        assert_eq!(out, vec![ExchangeEffect::RunChild]);
        assert_eq!(s.executed(), 1);
        assert!(s.acked() && s.delivered() && !s.failed());
    }

    #[test]
    fn session_dedup_absorbs_duplicate_response() {
        let mut s = DataPlane::session(ExchangeProtocol::CouchDb, RetryPolicy::default());
        let mut out = Vec::new();
        s.start(&mut out);
        s.step(ExchangeInput::Deliver(ExchangeMsg::StoreReq), &mut out);
        out.clear();
        s.step(ExchangeInput::Deliver(ExchangeMsg::FetchResp), &mut out);
        s.step(ExchangeInput::Deliver(ExchangeMsg::FetchResp), &mut out);
        assert_eq!(out, vec![ExchangeEffect::RunChild], "one launch only");
        assert_eq!(s.executed(), 1);
        // The planted-bug variant runs the child twice.
        let mut buggy = ExchangeSession::new(RetryPolicy::default(), true).without_dedup();
        out.clear();
        buggy.start(&mut out);
        out.clear();
        buggy.step(ExchangeInput::Deliver(ExchangeMsg::FetchResp), &mut out);
        buggy.step(ExchangeInput::Deliver(ExchangeMsg::FetchResp), &mut out);
        assert_eq!(buggy.executed(), 2);
    }

    #[test]
    fn session_crash_loses_volatile_store_but_not_durable() {
        for (proto, survives) in [
            (ExchangeProtocol::CouchDb, true),
            (ExchangeProtocol::InMemory, false),
            (ExchangeProtocol::RemoteMemory, false),
        ] {
            let mut s = DataPlane::session(proto, RetryPolicy::default());
            let mut out = Vec::new();
            s.start(&mut out);
            s.step(ExchangeInput::Deliver(ExchangeMsg::StoreReq), &mut out);
            assert!(s.stored());
            s.step(ExchangeInput::StoreCrash, &mut out);
            assert_eq!(s.stored(), survives, "{proto:?}");
            // A fetch after the crash misses on volatile stores.
            out.clear();
            s.step(ExchangeInput::Deliver(ExchangeMsg::FetchReq), &mut out);
            let expect = if survives {
                ExchangeMsg::FetchResp
            } else {
                ExchangeMsg::FetchMiss
            };
            assert_eq!(out, vec![ExchangeEffect::Send(expect)]);
        }
    }

    #[test]
    fn session_bounded_policy_gives_up_after_exhausting_fetches() {
        let rp = RetryPolicy::bounded(3, SimDuration::ZERO);
        let mut s = ExchangeSession::new(rp, false);
        let mut out = Vec::new();
        s.start(&mut out); // fetch_sends = 1
        out.clear();
        s.step(ExchangeInput::ChildTimer, &mut out); // 2
        s.step(ExchangeInput::ChildTimer, &mut out); // 3
        assert_eq!(out.len(), 2, "two retransmissions within budget");
        assert!(!s.failed());
        out.clear();
        s.step(ExchangeInput::ChildTimer, &mut out); // exhausted
        assert!(s.failed());
        assert!(out.is_empty());
        // A failed session is inert: even a late response is ignored.
        s.step(ExchangeInput::Deliver(ExchangeMsg::FetchResp), &mut out);
        assert_eq!(s.executed(), 0);
        assert!(out.is_empty());
    }
}

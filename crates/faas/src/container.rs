//! Container lifecycle: cold starts, warm starts, keep-alive pools.
//!
//! OpenWhisk instantiates each function in a Docker container. Starting a
//! fresh container ("cold start") costs on the order of 100–300 ms;
//! re-entering an idle container kept alive from a previous invocation of
//! the same function ("warm start") costs single-digit milliseconds.
//! HiveMind's scheduler deliberately keeps idling containers alive for an
//! empirically chosen 10–30 s window (Sec. 4.3) so short-lived edge tasks
//! mostly hit warm containers.

use std::collections::{BTreeMap, HashMap};

use hivemind_sim::dist::Dist;
use hivemind_sim::time::{SimDuration, SimTime};
use rand::Rng;

use crate::types::AppId;

/// Instantiation cost calibration.
#[derive(Debug, Clone, PartialEq)]
pub struct ContainerParams {
    /// Cold-start latency (image setup + docker run + runtime boot).
    pub cold_start: Dist,
    /// Warm-start latency (unpause + dispatch into a kept-alive container).
    pub warm_start: Dist,
    /// How long an idle container is kept before termination.
    pub keep_alive: SimDuration,
}

impl ContainerParams {
    /// Default OpenWhisk-like behaviour: containers are reclaimed quickly
    /// once idle, so low-rate workloads keep paying cold starts (the
    /// paper's Fig. 6a observation), and even a "warm" dispatch pays a
    /// Docker unpause + runtime re-init on the order of tens of
    /// milliseconds — the source of Fig. 6b's ~22% instantiation share.
    pub fn openwhisk_default() -> Self {
        ContainerParams {
            cold_start: Dist::lognormal_median_sigma(0.120, 0.35),
            warm_start: Dist::lognormal_median_sigma(0.055, 0.30),
            keep_alive: SimDuration::from_secs(2),
        }
    }

    /// HiveMind's policy: idle containers linger 10–30 s (we use the
    /// middle of the paper's empirical range) and are kept *running*
    /// rather than paused, so re-dispatch is single-digit milliseconds —
    /// "most benefits come from HiveMind avoiding instantiation
    /// overheads" (Sec. 5.1).
    pub fn hivemind() -> Self {
        ContainerParams {
            warm_start: Dist::lognormal_median_sigma(0.008, 0.30),
            keep_alive: SimDuration::from_secs(20),
            ..Self::openwhisk_default()
        }
    }
}

/// Pool of idle (kept-alive) containers across the cluster.
///
/// Containers are keyed by `(server, app)`; each entry records when the
/// container expires. Expiry is evaluated lazily at lookup time, which is
/// exact because reuse only matters at lookup instants.
///
/// # Examples
///
/// ```rust
/// use hivemind_faas::container::{ContainerParams, WarmPool};
/// use hivemind_faas::types::AppId;
/// use hivemind_sim::time::{SimDuration, SimTime};
///
/// let mut pool = WarmPool::new(ContainerParams::hivemind());
/// pool.park(SimTime::ZERO, 3, AppId(1));
/// // Ten seconds later the container is still warm (20 s keep-alive)...
/// assert!(pool.try_take(SimTime::from_secs(10), 3, AppId(1)));
/// // ...and taking it removed it from the pool.
/// assert!(!pool.try_take(SimTime::from_secs(10), 3, AppId(1)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct WarmPool {
    params: ContainerParams,
    /// (server, app) -> expiry times of idle containers. Entries are
    /// never removed once created — an emptied slot keeps its `Vec`'s
    /// capacity — so steady-state park/take cycles stay off the
    /// allocator.
    idle: HashMap<(u32, AppId), Vec<SimTime>>,
    /// app -> server -> latest idle-container expiry. Mirrors `idle` so
    /// `warm_server` can walk servers in ascending id order and stop at
    /// the first live one instead of scanning the whole pool. A server
    /// whose containers are all gone keeps its entry as a tombstone with
    /// a past expiry (readers check `expiry > now` anyway); removing and
    /// re-inserting would churn tree nodes on every park/take cycle.
    by_app: HashMap<AppId, BTreeMap<u32, SimTime>>,
    warm_hits: u64,
    cold_misses: u64,
}

impl Default for ContainerParams {
    fn default() -> Self {
        ContainerParams::openwhisk_default()
    }
}

impl WarmPool {
    /// Creates an empty pool with the given lifecycle parameters.
    pub fn new(params: ContainerParams) -> Self {
        WarmPool {
            params,
            idle: HashMap::new(),
            by_app: HashMap::new(),
            warm_hits: 0,
            cold_misses: 0,
        }
    }

    /// The lifecycle parameters.
    pub fn params(&self) -> &ContainerParams {
        &self.params
    }

    /// Parks a just-finished container as idle on `server`, eligible for
    /// reuse until the keep-alive window expires.
    pub fn park(&mut self, now: SimTime, server: u32, app: AppId) {
        let expiry = now + self.params.keep_alive;
        self.idle.entry((server, app)).or_default().push(expiry);
        let slot = self
            .by_app
            .entry(app)
            .or_default()
            .entry(server)
            .or_insert(expiry);
        *slot = (*slot).max(expiry);
    }

    /// Attempts to take a warm container for `app` on `server`. Returns
    /// `true` on a warm hit (and consumes the container).
    pub fn try_take(&mut self, now: SimTime, server: u32, app: AppId) -> bool {
        let mut hit = false;
        if let Some(expiries) = self.idle.get_mut(&(server, app)) {
            expiries.retain(|&e| e > now);
            hit = expiries.pop().is_some();
            // `None` leaves a tombstone: `now` is never `> now`, so the
            // server stops being offered until the next park refreshes it.
            let latest = expiries.iter().copied().max().unwrap_or(now);
            if let Some(slot) = self.by_app.get_mut(&app).and_then(|m| m.get_mut(&server)) {
                *slot = latest;
            }
        }
        if hit {
            self.warm_hits += 1;
        } else {
            self.cold_misses += 1;
        }
        hit
    }

    /// Drops every idle container on `server` (the server crashed; its
    /// containers died with it).
    pub fn flush_server(&mut self, server: u32) {
        for (&(s, _), expiries) in self.idle.iter_mut() {
            if s == server {
                expiries.clear();
            }
        }
        for servers in self.by_app.values_mut() {
            if let Some(slot) = servers.get_mut(&server) {
                *slot = SimTime::ZERO;
            }
        }
    }

    /// Any server holding a warm container for `app` at `now`, if one
    /// exists (used by schedulers to steer invocations toward warm nodes).
    pub fn warm_server(&self, now: SimTime, app: AppId) -> Option<u32> {
        // Ascending-id walk over the per-app index; the first entry whose
        // latest expiry is still live is exactly the `min` the old
        // whole-pool scan produced. Entries that expired without being
        // taken are skipped here and reaped by `try_take`/`flush_server`.
        self.by_app
            .get(&app)?
            .iter()
            .find(|&(_, &expiry)| expiry > now)
            .map(|(&s, _)| s)
    }

    /// Samples the instantiation latency for a hit/miss.
    pub fn instantiation_cost<R: Rng + ?Sized>(&self, warm: bool, rng: &mut R) -> SimDuration {
        if warm {
            self.params.warm_start.sample(rng)
        } else {
            self.params.cold_start.sample(rng)
        }
    }

    /// `(warm_hits, cold_misses)` since construction.
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.warm_hits, self.cold_misses)
    }

    /// Number of currently idle (non-expired) containers.
    pub fn idle_count(&self, now: SimTime) -> usize {
        self.idle
            .values()
            .map(|v| v.iter().filter(|&&e| e > now).count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hivemind_sim::rng::RngForge;

    #[test]
    fn warm_within_keepalive_cold_after() {
        let mut p = WarmPool::new(ContainerParams::hivemind());
        p.park(SimTime::ZERO, 0, AppId(0));
        assert!(p.try_take(SimTime::from_secs(19), 0, AppId(0)));
        p.park(SimTime::ZERO, 0, AppId(0));
        assert!(!p.try_take(SimTime::from_secs(21), 0, AppId(0)));
        assert_eq!(p.hit_stats(), (1, 1));
    }

    #[test]
    fn containers_are_per_server_and_app() {
        let mut p = WarmPool::new(ContainerParams::hivemind());
        p.park(SimTime::ZERO, 0, AppId(0));
        assert!(
            !p.try_take(SimTime::from_secs(1), 1, AppId(0)),
            "wrong server"
        );
        assert!(!p.try_take(SimTime::from_secs(1), 0, AppId(1)), "wrong app");
        assert!(p.try_take(SimTime::from_secs(1), 0, AppId(0)));
    }

    #[test]
    fn warm_server_lookup() {
        let mut p = WarmPool::new(ContainerParams::hivemind());
        assert_eq!(p.warm_server(SimTime::ZERO, AppId(0)), None);
        p.park(SimTime::ZERO, 5, AppId(0));
        assert_eq!(p.warm_server(SimTime::from_secs(1), AppId(0)), Some(5));
        assert_eq!(p.warm_server(SimTime::from_secs(100), AppId(0)), None);
    }

    #[test]
    fn instantiation_costs_are_order_of_magnitude_apart() {
        let p = WarmPool::new(ContainerParams::openwhisk_default());
        let mut rng = RngForge::new(1).stream("inst");
        let warm: f64 = (0..200)
            .map(|_| p.instantiation_cost(true, &mut rng).as_secs_f64())
            .sum::<f64>()
            / 200.0;
        let cold: f64 = (0..200)
            .map(|_| p.instantiation_cost(false, &mut rng).as_secs_f64())
            .sum::<f64>()
            / 200.0;
        assert!(cold > warm * 1.8, "cold {cold} vs warm {warm}");
        assert!(cold > 0.08 && cold < 0.30, "cold {cold}");
        // HiveMind's running containers re-dispatch an order of magnitude
        // faster than OpenWhisk's paused ones.
        let hm = WarmPool::new(ContainerParams::hivemind());
        let hm_warm: f64 = (0..200)
            .map(|_| hm.instantiation_cost(true, &mut rng).as_secs_f64())
            .sum::<f64>()
            / 200.0;
        assert!(warm > hm_warm * 5.0, "ow warm {warm} vs hm warm {hm_warm}");
    }

    #[test]
    fn openwhisk_keepalive_shorter_than_hivemind() {
        assert!(
            ContainerParams::openwhisk_default().keep_alive
                < ContainerParams::hivemind().keep_alive
        );
        // The paper gives 10–30 s for HiveMind's empirical setting.
        let ka = ContainerParams::hivemind().keep_alive.as_secs_f64();
        assert!((10.0..=30.0).contains(&ka));
    }

    #[test]
    fn idle_count_respects_expiry() {
        let mut p = WarmPool::new(ContainerParams::hivemind());
        p.park(SimTime::ZERO, 0, AppId(0));
        p.park(SimTime::ZERO, 1, AppId(1));
        assert_eq!(p.idle_count(SimTime::from_secs(1)), 2);
        assert_eq!(p.idle_count(SimTime::from_secs(25)), 0);
    }
}

//! Request/response vocabulary of the serverless cluster.

use hivemind_sim::dist::Dist;
use hivemind_sim::time::{SimDuration, SimTime};

/// Identifies a registered application (function image) on the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AppId(pub u16);

/// Resource/cost profile of a registered function.
///
/// Profiles carry everything the cluster needs to execute an invocation:
/// the service-time distribution on a server core, the input/output object
/// sizes exchanged through the data plane, and a memory footprint used for
/// admission bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    /// Human-readable name for reports.
    pub name: &'static str,
    /// Per-invocation execution time on one cloud core.
    pub exec: Dist,
    /// Input object size fetched before execution, bytes.
    pub input_bytes: u64,
    /// Output object size stored after execution, bytes.
    pub output_bytes: u64,
    /// Container memory footprint, MB.
    pub memory_mb: u32,
}

impl AppProfile {
    /// A convenience profile for tests: constant `exec_ms` execution,
    /// small objects.
    pub fn test_profile(exec_ms: f64) -> AppProfile {
        AppProfile {
            name: "test",
            exec: Dist::constant_ms(exec_ms),
            input_bytes: 64 * 1024,
            output_bytes: 16 * 1024,
            memory_mb: 256,
        }
    }
}

/// A request to run one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Invocation {
    /// Caller correlation tag, echoed in the [`Completion`].
    pub tag: u64,
    /// Which registered application to run.
    pub app: AppId,
    /// Server where the parent function ran, if this is a child in a
    /// multi-tier job; enables colocation and in-memory data exchange.
    pub parent_server: Option<u32>,
    /// Whether the parent's container is still alive with output staged in
    /// a shared virtual-memory region (Sec. 4.3's first optimization).
    pub parent_in_memory: bool,
    /// Require a dedicated (fresh) container — the DSL's `Isolate(task)`
    /// directive; disables warm reuse for this invocation.
    pub isolate: bool,
}

impl Invocation {
    /// A root invocation (no parent) of `app` with correlation `tag`.
    pub fn root(app: AppId, tag: u64) -> Invocation {
        Invocation {
            tag,
            app,
            parent_server: None,
            parent_in_memory: false,
            isolate: false,
        }
    }

    /// A child invocation whose parent ran on `server`.
    pub fn child_of(app: AppId, tag: u64, server: u32, in_memory: bool) -> Invocation {
        Invocation {
            tag,
            app,
            parent_server: Some(server),
            parent_in_memory: in_memory,
            isolate: false,
        }
    }
}

/// Where the latency of a completed invocation went.
///
/// Matches the paper's breakdown categories: management operations
/// (control path + scheduling), container instantiation, data I/O through
/// the function data plane, and useful execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyBreakdown {
    /// Queueing for a free core before admission.
    pub queueing: SimDuration,
    /// Control-path management: front-end, auth, bus, invoker dispatch.
    pub management: SimDuration,
    /// Container instantiation (zero for warm hits).
    pub instantiation: SimDuration,
    /// Input fetch + output store through the data plane.
    pub data_io: SimDuration,
    /// Useful function execution (includes fault re-execution time).
    pub exec: SimDuration,
}

impl LatencyBreakdown {
    /// Total end-to-end latency.
    pub fn total(&self) -> SimDuration {
        self.queueing + self.management + self.instantiation + self.data_io + self.exec
    }

    /// Fraction of the total spent in a part; 0 when the total is zero.
    pub fn fraction(&self, part: SimDuration) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            part.as_secs_f64() / total
        }
    }
}

/// How an invocation finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Ran to completion on the first attempt.
    Ok,
    /// One or more injected faults occurred; the function was respawned
    /// and eventually succeeded.
    RecoveredFromFaults {
        /// Number of respawns needed.
        respawns: u32,
    },
    /// The straggler monitor respawned it and the duplicate won.
    MitigatedStraggler,
    /// Every attempt allowed by the retry policy faulted; the invocation
    /// was abandoned (only possible with a give-up [`RetryPolicy`]).
    ///
    /// [`RetryPolicy`]: hivemind_sim::faults::RetryPolicy
    Failed {
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// The overload-control plane rejected the invocation before it ran:
    /// the admission queue was full, its queueing deadline expired, or
    /// the app's circuit breaker was open (only possible with an active
    /// [`OverloadPolicy`]).
    ///
    /// [`OverloadPolicy`]: hivemind_sim::overload::OverloadPolicy
    Shed {
        /// Why the plane refused it.
        reason: ShedReason,
    },
}

/// Which overload-control mechanism shed an invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded admission queue was full on arrival.
    QueueFull,
    /// The invocation waited past its queueing deadline.
    DeadlineExpired,
    /// The app's circuit breaker was open (fail fast).
    BreakerOpen,
}

/// Record of one finished invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// Caller's correlation tag.
    pub tag: u64,
    /// The application that ran.
    pub app: AppId,
    /// Server that executed the (winning) attempt.
    pub server: u32,
    /// When the invocation entered the cluster.
    pub arrived: SimTime,
    /// When the result was ready.
    pub finished: SimTime,
    /// Latency decomposition.
    pub breakdown: LatencyBreakdown,
    /// Whether a cold container start was required.
    pub cold_start: bool,
    /// Whether data exchange used the in-memory fast path.
    pub in_memory_exchange: bool,
    /// How it finished.
    pub outcome: Outcome,
}

impl Completion {
    /// End-to-end latency of the invocation.
    pub fn latency(&self) -> SimDuration {
        self.finished - self.arrived
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_total_sums_parts() {
        let b = LatencyBreakdown {
            queueing: SimDuration::from_millis(1),
            management: SimDuration::from_millis(2),
            instantiation: SimDuration::from_millis(3),
            data_io: SimDuration::from_millis(4),
            exec: SimDuration::from_millis(10),
        };
        assert_eq!(b.total(), SimDuration::from_millis(20));
        assert!((b.fraction(b.exec) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_fraction_is_zero() {
        let b = LatencyBreakdown::default();
        assert_eq!(b.fraction(SimDuration::from_millis(1)), 0.0);
    }

    #[test]
    fn invocation_constructors() {
        let root = Invocation::root(AppId(3), 42);
        assert_eq!(root.parent_server, None);
        assert!(!root.parent_in_memory);
        let child = Invocation::child_of(AppId(3), 43, 7, true);
        assert_eq!(child.parent_server, Some(7));
        assert!(child.parent_in_memory);
    }

    #[test]
    fn completion_latency() {
        let c = Completion {
            tag: 0,
            app: AppId(0),
            server: 0,
            arrived: SimTime::from_secs(1),
            finished: SimTime::from_secs(3),
            breakdown: LatencyBreakdown::default(),
            cold_start: false,
            in_memory_exchange: false,
            outcome: Outcome::Ok,
        };
        assert_eq!(c.latency(), SimDuration::from_secs(2));
    }
}

//! # hivemind-faas
//!
//! The serverless substrate of the HiveMind reproduction — an
//! OpenWhisk-shaped Function-as-a-Service cluster plus the statically
//! provisioned IaaS baseline the paper compares against.
//!
//! The modeled control path mirrors Sec. 2.3: an HTTP request hits an
//! NGINX front-end, the OpenWhisk Controller authenticates against
//! CouchDB, selects an Invoker via Kafka's publish–subscribe bus, and the
//! Invoker launches the function in a Docker container. The phenomena the
//! paper measures all fall out of this pipeline:
//!
//! * **instantiation overheads** (Fig. 6b) — cold vs warm container starts,
//!   keep-alive windows ([`container`]);
//! * **function communication** (Fig. 6c) — CouchDB vs direct RPC vs
//!   in-memory vs FPGA remote memory ([`dataplane`]);
//! * **elasticity & fault tolerance** (Fig. 5) — queueing on a bounded
//!   core pool, fault injection with automatic respawn ([`cluster`]);
//! * **scheduling** (Sec. 4.3) — the default OpenWhisk policy vs
//!   HiveMind's scheduler with parent–child colocation, long keep-alive,
//!   core pinning and node probation ([`scheduler`]);
//! * the **fixed/IaaS baseline** (Figs. 1, 5a, 5b) — a statically sized
//!   worker pool with no per-task instantiation but no elasticity either
//!   ([`iaas`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod container;
pub mod dataplane;
pub mod iaas;
pub mod scheduler;
pub mod types;

pub use cluster::{Cluster, ClusterParams};
pub use dataplane::{DataPlane, ExchangeProtocol};
pub use iaas::FixedPool;
pub use scheduler::SchedulerPolicy;
pub use types::{AppId, AppProfile, Completion, Invocation, LatencyBreakdown};

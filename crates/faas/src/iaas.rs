//! Statically provisioned (IaaS/PaaS) baseline.
//!
//! The paper's comparisons repeatedly include a "fixed" deployment:
//! reserved containers on a fixed number of cores, provisioned for either
//! the average or the worst-case load (Figs. 1, 5a, 5b). Tasks here pay no
//! per-invocation instantiation (the workers are long-lived) but the pool
//! cannot grow: when offered load exceeds the provisioned capacity, tasks
//! queue and latency explodes — exactly the saturation behaviour of the
//! "Avg Res" deployment in Fig. 5b. Growing the pool *is* possible, but at
//! IaaS timescales: spinning up an instance takes seconds, not
//! milliseconds.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use hivemind_sim::component::Component;
use hivemind_sim::rng::RngForge;
use hivemind_sim::stats::TimeSeries;
use hivemind_sim::time::{SimDuration, SimTime};
use hivemind_sim::trace::TraceHandle;
use rand::rngs::SmallRng;

use crate::dataplane::{DataPlane, ExchangeProtocol};
use crate::types::{AppId, AppProfile, Completion, Invocation, LatencyBreakdown, Outcome};

/// Fixed-pool configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedPoolParams {
    /// Number of long-lived worker slots (reserved cores).
    pub workers: u32,
    /// Data-exchange protocol between stages (reserved deployments talk
    /// over the same CouchDB/RPC substrate).
    pub exchange: ExchangeProtocol,
    /// Instance spin-up time if the pool is ever asked to grow
    /// ("traditional PaaS/IaaS clouds introduce several seconds of
    /// overheads to spin up new instances", Sec. 3.2).
    pub spin_up: SimDuration,
}

impl Default for FixedPoolParams {
    fn default() -> Self {
        FixedPoolParams {
            workers: 40,
            exchange: ExchangeProtocol::DirectRpc,
            spin_up: SimDuration::from_secs(4),
        }
    }
}

/// A statically provisioned worker pool.
///
/// # Examples
///
/// ```rust
/// use hivemind_faas::iaas::{FixedPool, FixedPoolParams};
/// use hivemind_faas::types::{AppId, AppProfile, Invocation};
/// use hivemind_sim::rng::RngForge;
/// use hivemind_sim::time::SimTime;
///
/// let mut pool = FixedPool::new(
///     FixedPoolParams { workers: 1, ..FixedPoolParams::default() },
///     RngForge::new(1),
/// );
/// pool.register_app(AppId(0), AppProfile::test_profile(1000.0));
/// pool.submit(SimTime::ZERO, Invocation::root(AppId(0), 1));
/// pool.submit(SimTime::ZERO, Invocation::root(AppId(0), 2));
/// let mut done = Vec::new();
/// while let Some(t) = pool.next_wakeup() {
///     done.extend(pool.advance_to(t));
/// }
/// // One worker: the second task queues behind the first.
/// assert!(done[1].latency() > done[0].latency());
/// ```
#[derive(Debug)]
pub struct FixedPool {
    params: FixedPoolParams,
    apps: HashMap<AppId, AppProfile>,
    dataplane: DataPlane,
    rng: SmallRng,
    /// Completion times of busy workers.
    busy: BinaryHeap<Reverse<(SimTime, u64)>>,
    seq: u64,
    wait_queue: VecDeque<(SimTime, Invocation)>,
    /// Finished-but-undelivered completions, ordered by `(finished, seq)`
    /// — matching the old stable sort on finish time.
    pending: BinaryHeap<Reverse<PendingCompletion>>,
    active_series: TimeSeries,
    tracer: TraceHandle,
}

impl FixedPool {
    /// Creates the pool.
    ///
    /// # Panics
    ///
    /// Panics if `params.workers == 0`.
    pub fn new(params: FixedPoolParams, forge: RngForge) -> Self {
        assert!(params.workers > 0, "pool needs at least one worker");
        FixedPool {
            params,
            apps: HashMap::new(),
            dataplane: DataPlane::new(),
            rng: forge.stream("iaas-pool"),
            busy: BinaryHeap::new(),
            seq: 0,
            wait_queue: VecDeque::new(),
            pending: BinaryHeap::new(),
            active_series: TimeSeries::new(),
            tracer: TraceHandle::disabled(),
        }
    }

    /// Installs a tracing handle; the pool then samples `iaas/active` and
    /// `iaas/queued` counters at every occupancy change.
    pub fn set_tracer(&mut self, tracer: TraceHandle) {
        self.tracer = tracer;
    }

    fn sample_occupancy(&self, now: SimTime) {
        if self.tracer.is_enabled() {
            self.tracer
                .counter("iaas", "active", 0, now, self.busy.len() as f64);
            self.tracer
                .counter("iaas", "queued", 0, now, self.wait_queue.len() as f64);
        }
    }

    /// Registers an application profile.
    pub fn register_app(&mut self, app: AppId, profile: AppProfile) {
        self.apps.insert(app, profile);
    }

    /// The pool parameters.
    pub fn params(&self) -> &FixedPoolParams {
        &self.params
    }

    fn retire(&mut self, now: SimTime) {
        while self.busy.peek().is_some_and(|Reverse((t, _))| *t <= now) {
            self.busy.pop();
        }
    }

    fn start(&mut self, now: SimTime, arrived: SimTime, inv: Invocation) {
        let profile = &self.apps[&inv.app];
        let data_in = if profile.input_bytes > 0 {
            self.dataplane.exchange(
                now,
                self.params.exchange,
                profile.input_bytes,
                &mut self.rng,
            )
        } else {
            SimDuration::ZERO
        };
        let exec = profile.exec.sample(&mut self.rng);
        let t_exec_done = now + data_in + exec;
        let data_out = if profile.output_bytes > 0 {
            self.dataplane.exchange(
                t_exec_done,
                self.params.exchange,
                profile.output_bytes,
                &mut self.rng,
            )
        } else {
            SimDuration::ZERO
        };
        let finish = t_exec_done + data_out;
        let seq = self.seq;
        self.seq += 1;
        self.busy.push(Reverse((finish, seq)));
        self.active_series.record(now, self.busy.len() as f64);
        self.push_pending(
            seq,
            Completion {
                tag: inv.tag,
                app: inv.app,
                server: 0,
                arrived,
                finished: finish,
                breakdown: LatencyBreakdown {
                    queueing: now - arrived,
                    management: SimDuration::ZERO,
                    instantiation: SimDuration::ZERO,
                    data_io: data_in + data_out,
                    exec,
                },
                cold_start: false,
                in_memory_exchange: false,
                outcome: Outcome::Ok,
            },
        );
    }

    /// Submits an invocation.
    ///
    /// # Panics
    ///
    /// Panics if the app was never registered.
    pub fn submit(&mut self, now: SimTime, inv: Invocation) {
        assert!(
            self.apps.contains_key(&inv.app),
            "app {:?} not registered",
            inv.app
        );
        self.retire(now);
        if (self.busy.len() as u32) < self.params.workers {
            self.start(now, now, inv);
        } else {
            self.wait_queue.push_back((now, inv));
        }
        self.sample_occupancy(now);
    }

    /// The earliest instant at which a worker frees or a result is due.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        self.busy.peek().map(|Reverse((t, _))| *t)
    }

    /// Advances to `now`, returning finished completions.
    pub fn advance_to(&mut self, now: SimTime) -> Vec<Completion> {
        let mut out = Vec::new();
        self.advance_into(now, &mut out);
        out
    }

    /// [`FixedPool::advance_to`] into a caller-provided buffer, so a hot
    /// caller can reuse one allocation across calls.
    #[allow(clippy::while_let_loop)] // the loop also breaks on `t > now`
    pub fn advance_into(&mut self, now: SimTime, out: &mut Vec<Completion>) {
        // Free workers as their tasks finish, starting queued work at the
        // exact instant each worker frees (not at `now`).
        loop {
            let Some(&Reverse((t, _))) = self.busy.peek() else {
                break;
            };
            if t > now {
                break;
            }
            self.busy.pop();
            if let Some((arrived, inv)) = self.wait_queue.pop_front() {
                self.start(t, arrived, inv);
            }
            self.sample_occupancy(t);
        }
        while let Some(Reverse(p)) = self.pending.peek() {
            if p.completion.finished > now {
                break;
            }
            let Some(Reverse(p)) = self.pending.pop() else {
                unreachable!("peeked completion vanished");
            };
            out.push(p.completion);
        }
    }

    fn push_pending(&mut self, seq: u64, completion: Completion) {
        self.pending
            .push(Reverse(PendingCompletion { seq, completion }));
    }

    /// Tasks waiting for a worker.
    pub fn queued(&self) -> usize {
        self.wait_queue.len()
    }

    /// Concurrently running tasks over time.
    pub fn active_series(&self) -> &TimeSeries {
        &self.active_series
    }
}

impl Component for FixedPool {
    type Command = Invocation;
    type Output = Completion;

    fn handle(&mut self, now: SimTime, cmd: Invocation) {
        self.submit(now, cmd);
    }

    fn next_wakeup(&self) -> Option<SimTime> {
        FixedPool::next_wakeup(self)
    }

    fn advance(&mut self, now: SimTime, out: &mut Vec<Completion>) {
        self.advance_into(now, out);
    }
}

/// Heap entry ordering pending completions by `(finished, seq)`; `seq` is
/// the start order, reproducing the old stable sort's tie-breaking.
#[derive(Debug)]
struct PendingCompletion {
    seq: u64,
    completion: Completion,
}

impl PartialEq for PendingCompletion {
    fn eq(&self, other: &Self) -> bool {
        self.completion.finished == other.completion.finished && self.seq == other.seq
    }
}

impl Eq for PendingCompletion {}

impl PartialOrd for PendingCompletion {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PendingCompletion {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.completion.finished, self.seq).cmp(&(other.completion.finished, other.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(p: &mut FixedPool) -> Vec<Completion> {
        let mut done = Vec::new();
        while let Some(t) = p.next_wakeup() {
            done.extend(p.advance_to(t));
        }
        done
    }

    fn pool(workers: u32) -> FixedPool {
        let mut p = FixedPool::new(
            FixedPoolParams {
                workers,
                exchange: ExchangeProtocol::InMemory,
                ..FixedPoolParams::default()
            },
            RngForge::new(5),
        );
        p.register_app(AppId(0), AppProfile::test_profile(100.0));
        p
    }

    #[test]
    fn no_instantiation_cost() {
        let mut p = pool(4);
        p.submit(SimTime::ZERO, Invocation::root(AppId(0), 0));
        let done = drain(&mut p);
        assert_eq!(done[0].breakdown.instantiation, SimDuration::ZERO);
        assert_eq!(done[0].breakdown.management, SimDuration::ZERO);
    }

    #[test]
    fn saturation_queues_fifo() {
        let mut p = pool(2);
        for tag in 0..6 {
            p.submit(SimTime::ZERO, Invocation::root(AppId(0), tag));
        }
        let done = drain(&mut p);
        assert_eq!(done.len(), 6);
        // Three "waves" of two: latencies step up by ~100 ms per wave.
        let lat: Vec<f64> = done.iter().map(|c| c.latency().as_millis_f64()).collect();
        assert!(lat[5] > lat[0] * 2.5, "queueing must inflate: {lat:?}");
        assert!(done[5].breakdown.queueing > SimDuration::from_millis(150));
    }

    #[test]
    fn underload_matches_serverless_free_of_overheads() {
        let mut p = pool(8);
        for tag in 0..8 {
            p.submit(SimTime::from_secs(tag), Invocation::root(AppId(0), tag));
        }
        let done = drain(&mut p);
        for c in &done {
            assert!(
                c.latency() < SimDuration::from_millis(110),
                "unloaded fixed pool ≈ pure exec: {}",
                c.latency()
            );
        }
    }

    #[test]
    fn workers_free_at_exact_instants() {
        let mut p = pool(1);
        p.submit(SimTime::ZERO, Invocation::root(AppId(0), 0));
        p.submit(SimTime::ZERO, Invocation::root(AppId(0), 1));
        let done = drain(&mut p);
        let gap = (done[1].finished - done[0].finished).as_millis_f64();
        assert!(
            (gap - 100.0).abs() < 2.0,
            "back-to-back execution, gap {gap}"
        );
    }

    #[test]
    fn active_series_bounded_by_workers() {
        let mut p = pool(3);
        for tag in 0..10 {
            p.submit(SimTime::ZERO, Invocation::root(AppId(0), tag));
        }
        let _ = drain(&mut p);
        assert!(p.active_series().max() <= 3.0);
    }
}

//! Offline stand-in for the subset of [`rand` 0.8](https://docs.rs/rand/0.8)
//! used by this workspace.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the small API surface it actually consumes:
//!
//! * [`rngs::SmallRng`] — a xoshiro256++ generator (the algorithm rand 0.8
//!   uses for `SmallRng` on 64-bit targets), seeded via SplitMix64 exactly
//!   like `SeedableRng::seed_from_u64`.
//! * [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`] over the integer
//!   and float types the simulator draws.
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Draw-for-draw values are not guaranteed to match the real crate, but
//! every stream is fully deterministic in its seed, which is the property
//! the simulator relies on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A low-level source of 64-bit random words.
pub trait RngCore {
    /// Returns the next word in the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit word (high bits of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the full value stream.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types [`Rng::gen_range`] can produce uniformly.
///
/// A single generic [`SampleRange`] impl dispatches through this trait so
/// unsuffixed literal ranges (`-12.0..12.0`) still take the default
/// integer/float fallback, exactly as with the real crate.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from the half-open range `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform draw from the closed range `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let width = (hi as i128 - lo as i128) as u128;
                let draw = ((rng.next_u64() as u128) % width) as i128;
                (lo as i128 + draw) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) % width) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )+};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let unit = <$t as Standard>::draw(rng);
                lo + unit * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                Self::sample_half_open(lo, hi, rng)
            }
        }
    )+};
}

impl_uniform_float!(f32, f64);

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        T::sample_inclusive(start, end, rng)
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        <f64 as Standard>::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64; used to expand a `u64` seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The small, fast generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm backing rand 0.8's `SmallRng` on
    /// 64-bit platforms. Not cryptographically secure; statistically
    /// excellent and extremely fast, which is what a simulator needs.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut state);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero words from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_in_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(SmallRng::seed_from_u64(7).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}

//! Remote memory access fabric for serverless data exchange.
//!
//! When a child function cannot be colocated with its parent, OpenWhisk's
//! default data path stores the parent's output in CouchDB and the child
//! fetches it through the controller — milliseconds per exchange. The
//! paper's fabric instead exposes the parent's output as a *virtualized
//! object*: the child issues reads that the FPGA resolves (address mapping
//! in hardware, dirty-data tracking via the cache-coherence protocol) and
//! serves over a RoCE-style protocol straight into host memory across the
//! UPI interconnect, with no OS involvement on either side.
//!
//! The model charges each object exchange a small fixed setup cost plus
//! bytes/bandwidth at near-interconnect speed, and supports bounded
//! concurrency per board (queue pairs from the soft registers).

use hivemind_sim::dist::Dist;
use hivemind_sim::time::{SimDuration, SimTime};
use rand::Rng;

/// Calibration for the remote-memory path.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteMemoryParams {
    /// One-time cost to resolve the virtualized object address and set up
    /// the RDMA transfer (hardware address mapping; ~2 µs median).
    pub setup: Dist,
    /// Effective transfer bandwidth, bytes/s. UPI + RoCE across the ToR
    /// sustains multiple GB/s; we default to 8 GB/s.
    pub bytes_per_sec: f64,
    /// Per-transfer interconnect/NIC serialization floor.
    pub floor: SimDuration,
    /// Maximum concurrent transfers a board serves before queueing.
    pub max_concurrent: u32,
}

impl Default for RemoteMemoryParams {
    fn default() -> Self {
        RemoteMemoryParams {
            setup: Dist::lognormal_median_sigma(2e-6, 0.25),
            bytes_per_sec: 8e9,
            floor: SimDuration::from_micros(1),
            max_concurrent: 8,
        }
    }
}

/// A remote-memory acceleration fabric instance (one per cluster in the
/// default deployment; per-server boards share the same model).
///
/// # Examples
///
/// ```rust
/// use hivemind_accel::remote_mem::{RemoteMemoryFabric, RemoteMemoryParams};
/// use hivemind_sim::rng::RngForge;
/// use hivemind_sim::time::SimTime;
///
/// let mut fabric = RemoteMemoryFabric::new(RemoteMemoryParams::default());
/// let mut rng = RngForge::new(1).stream("rm");
/// let latency = fabric.access(SimTime::ZERO, 1_000_000, &mut rng); // 1 MB object
/// // 1 MB at 8 GB/s = 125 µs, plus µs-scale setup.
/// assert!(latency.as_micros_f64() > 120.0 && latency.as_micros_f64() < 200.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteMemoryFabric {
    params: RemoteMemoryParams,
    /// Completion times of in-flight transfers (bounded by
    /// `max_concurrent`; earliest first).
    inflight: Vec<SimTime>,
    accesses: u64,
    bytes_served: u64,
}

impl RemoteMemoryFabric {
    /// Creates a fabric with the given calibration.
    ///
    /// # Panics
    ///
    /// Panics if bandwidth or concurrency is zero.
    pub fn new(params: RemoteMemoryParams) -> Self {
        assert!(params.bytes_per_sec > 0.0, "bandwidth must be positive");
        assert!(params.max_concurrent > 0, "need at least one channel");
        RemoteMemoryFabric {
            params,
            inflight: Vec::new(),
            accesses: 0,
            bytes_served: 0,
        }
    }

    /// Performs a remote object access of `bytes` starting at `now`,
    /// returning its total latency (queueing for a free channel included).
    pub fn access<R: Rng + ?Sized>(
        &mut self,
        now: SimTime,
        bytes: u64,
        rng: &mut R,
    ) -> SimDuration {
        // Retire completed transfers.
        self.inflight.retain(|&t| t > now);
        // If all channels are busy, wait for the earliest to free up.
        let start = if self.inflight.len() >= self.params.max_concurrent as usize {
            self.inflight.sort();
            let free_at = self.inflight[self.inflight.len() - self.params.max_concurrent as usize];
            free_at.max(now)
        } else {
            now
        };
        let wire = SimDuration::from_secs_f64(bytes as f64 / self.params.bytes_per_sec)
            .max(self.params.floor);
        let total = self.params.setup.sample(rng) + wire;
        let done = start + total;
        self.inflight.push(done);
        self.accesses += 1;
        self.bytes_served += bytes;
        done - now
    }

    /// Mean access latency for an object of `bytes`, for the analytical
    /// model (ignores queueing).
    pub fn mean_access_secs(&self, bytes: u64) -> f64 {
        let wire = (bytes as f64 / self.params.bytes_per_sec).max(self.params.floor.as_secs_f64());
        self.params.setup.mean_secs() + wire
    }

    /// Number of accesses served.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total bytes served.
    pub fn bytes_served(&self) -> u64 {
        self.bytes_served
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hivemind_sim::rng::RngForge;

    #[test]
    fn small_access_is_microseconds() {
        let mut f = RemoteMemoryFabric::new(RemoteMemoryParams::default());
        let mut rng = RngForge::new(2).stream("rm");
        let lat = f.access(SimTime::ZERO, 64, &mut rng);
        assert!(lat.as_micros_f64() < 10.0, "latency {lat}");
    }

    #[test]
    fn large_access_is_bandwidth_bound() {
        let mut f = RemoteMemoryFabric::new(RemoteMemoryParams::default());
        let mut rng = RngForge::new(3).stream("rm");
        let lat = f.access(SimTime::ZERO, 80_000_000, &mut rng); // 80 MB
        let secs = lat.as_secs_f64();
        assert!(
            (secs - 0.01).abs() < 0.002,
            "80 MB at 8 GB/s ≈ 10 ms, got {secs}"
        );
    }

    #[test]
    fn concurrency_limit_queues() {
        let mut f = RemoteMemoryFabric::new(RemoteMemoryParams {
            max_concurrent: 1,
            setup: Dist::constant(0.0),
            ..RemoteMemoryParams::default()
        });
        let mut rng = RngForge::new(4).stream("rm");
        let first = f.access(SimTime::ZERO, 8_000_000, &mut rng); // 1 ms
        let second = f.access(SimTime::ZERO, 8_000_000, &mut rng);
        assert!(second > first, "second waits for the single channel");
        assert!((second.as_secs_f64() - 2.0 * first.as_secs_f64()).abs() < 1e-6);
    }

    #[test]
    fn channels_free_over_time() {
        let mut f = RemoteMemoryFabric::new(RemoteMemoryParams {
            max_concurrent: 1,
            setup: Dist::constant(0.0),
            ..RemoteMemoryParams::default()
        });
        let mut rng = RngForge::new(5).stream("rm");
        let _ = f.access(SimTime::ZERO, 8_000_000, &mut rng);
        // One second later the channel is idle again.
        let later = f.access(SimTime::from_secs(1), 8_000_000, &mut rng);
        assert!((later.as_millis_f64() - 1.0).abs() < 0.1);
    }

    #[test]
    fn orders_of_magnitude_vs_couchdb() {
        // Sanity anchor for Fig. 6c: the remote-memory path must be
        // orders of magnitude below a millisecond-scale DB exchange.
        let f = RemoteMemoryFabric::new(RemoteMemoryParams::default());
        assert!(f.mean_access_secs(100_000) < 1e-3 / 10.0);
    }

    #[test]
    fn accounting_tracks_usage() {
        let mut f = RemoteMemoryFabric::new(RemoteMemoryParams::default());
        let mut rng = RngForge::new(6).stream("rm");
        let _ = f.access(SimTime::ZERO, 100, &mut rng);
        let _ = f.access(SimTime::ZERO, 200, &mut rng);
        assert_eq!(f.accesses(), 2);
        assert_eq!(f.bytes_served(), 300);
    }
}

//! # hivemind-accel
//!
//! Models of HiveMind's reconfigurable hardware acceleration fabric
//! (paper Secs. 4.4–4.5): an Arria 10 GX1150 FPGA coupled to the host Xeon
//! over the UPI memory interconnect, statically partitioned between
//!
//! * **remote memory access** — a RoCE-style RDMA protocol that lets a
//!   child serverless function read its parent's output directly from
//!   another server's memory, bypassing CouchDB and the OS network stack
//!   ([`remote_mem`]);
//! * **RPC offload** — the entire RPC stack in hardware, giving 2.1 µs
//!   round-trips between servers on the same ToR and 12.4 Mrps per core for
//!   64 B RPCs ([`rpc_accel`]).
//!
//! [`fpga`] models the shared device: LUT budget (the paper reports 18 % of
//! LUTs for remote memory and 24 % for RPC offload), hard reconfiguration
//! (swapping bitstreams, e.g. changing the transport between TCP and UDP)
//! and soft reconfiguration (register-file tweaks: CCI-P batch size, queue
//! provisioning, number of active RPC flows, load-balancing scheme).
//!
//! Everything here is a calibrated latency/throughput model — the fidelity
//! target is the *relative* cost difference between the accelerated and
//! software paths, which is what Figs. 12 and 13 measure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fpga;
pub mod remote_mem;
pub mod rpc_accel;

pub use fpga::{FpgaConfig, FpgaFabric, ReconfigKind};
pub use remote_mem::RemoteMemoryFabric;
pub use rpc_accel::accelerated_rpc_profile;

//! RPC stack offload.
//!
//! The paper offloads the entire RPC stack onto the FPGA and connects it to
//! the host CPU through the UPI memory interconnect (viewed as another NUMA
//! node), with zero-copy buffers shared between hardware and software. The
//! headline numbers (Sec. 4.5): **2.1 µs round-trip** between servers under
//! the same ToR switch and **12.4 Mrps per core** for 64 B RPCs.
//!
//! This module derives an accelerated [`RpcProfile`] from those constants
//! and provides a small throughput model used by the Fig. 13 ablations.

use hivemind_net::rpc::RpcProfile;
use hivemind_sim::dist::Dist;

/// Measured round-trip time of the accelerated stack between two servers on
/// the same ToR (paper Sec. 4.5).
pub const ACCEL_RTT_SECS: f64 = 2.1e-6;

/// Measured single-core throughput for 64 B RPCs (paper Sec. 4.5).
pub const ACCEL_MRPS_PER_CORE: f64 = 12.4e6;

/// The host-side processing profile when the RPC stack runs on the FPGA.
///
/// The RTT budget covers both directions of wire time and both hosts'
/// processing; attributing the processing share symmetrically leaves
/// roughly half a microsecond per side. Per-byte marshalling cost is zero:
/// payloads move by zero-copy placement into hardware-visible buffers, and
/// bulk wire time is already charged by the network fabric.
///
/// # Examples
///
/// ```rust
/// use hivemind_accel::rpc_accel::accelerated_rpc_profile;
/// use hivemind_net::rpc::RpcProfile;
///
/// let fast = accelerated_rpc_profile();
/// let slow = RpcProfile::software();
/// // An order of magnitude (and more) below the software stack.
/// assert!(slow.mean_one_way_secs(64) / fast.mean_one_way_secs(64) > 10.0);
/// ```
pub fn accelerated_rpc_profile() -> RpcProfile {
    RpcProfile {
        send_overhead: Dist::lognormal_median_sigma(0.5e-6, 0.15),
        recv_overhead: Dist::lognormal_median_sigma(0.5e-6, 0.15),
        per_byte: 0.0,
        max_rps_per_core: Some(ACCEL_MRPS_PER_CORE),
    }
}

/// Sustainable requests/second on one core for RPCs of `bytes`, accounting
/// for the FPGA's packet-to-completion pipeline: small RPCs are bound by
/// the 12.4 Mrps doorbell rate, large ones by CCI-P payload bandwidth.
pub fn accel_core_throughput_rps(bytes: u64) -> f64 {
    // CCI-P over UPI moves payload at ~16 GB/s.
    const CCIP_BYTES_PER_SEC: f64 = 16e9;
    let rate_bound = ACCEL_MRPS_PER_CORE;
    let bw_bound = CCIP_BYTES_PER_SEC / (bytes.max(64) as f64);
    rate_bound.min(bw_bound)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accel_rtt_matches_paper() {
        let p = accelerated_rpc_profile();
        // Both sides of a round trip: 4 host traversals ≈ 2 µs of the
        // 2.1 µs budget (the remainder is wire time modeled by the fabric).
        let four_sides = 2.0 * p.mean_one_way_secs(64);
        assert!(four_sides < ACCEL_RTT_SECS * 1.1, "host share {four_sides}");
    }

    #[test]
    fn small_rpc_rate_is_doorbell_bound() {
        assert_eq!(accel_core_throughput_rps(64), ACCEL_MRPS_PER_CORE);
    }

    #[test]
    fn large_rpc_rate_is_bandwidth_bound() {
        let rps = accel_core_throughput_rps(1_000_000);
        assert!((rps - 16_000.0).abs() < 1.0, "1 MB at 16 GB/s, got {rps}");
    }

    #[test]
    fn accel_beats_software_by_an_order_of_magnitude() {
        let fast = accelerated_rpc_profile();
        let slow = hivemind_net::rpc::RpcProfile::software();
        let speedup = slow.mean_one_way_secs(64) / fast.mean_one_way_secs(64);
        assert!(speedup > 20.0, "speedup {speedup}");
    }

    #[test]
    fn zero_copy_means_no_per_byte_cost() {
        let p = accelerated_rpc_profile();
        let small = p.mean_one_way_secs(64);
        let large = p.mean_one_way_secs(10_000_000);
        assert_eq!(small, large);
    }
}

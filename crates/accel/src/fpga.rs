//! The shared FPGA device: area budget and reconfiguration.
//!
//! The paper statically partitions one Arria 10 between the two
//! acceleration processes — 18 % of LUTs for remote memory access and 24 %
//! for RPC offload — and distinguishes *hard* reconfiguration (bitstream
//! swap, used for coarse decisions like the CPU–NIC interface protocol or
//! TCP-vs-UDP transport) from *soft* reconfiguration (host-visible register
//! files controlling CCI-P batch size, queue number/size, active RPC flows,
//! and the load-balancing scheme).

use std::fmt;

use hivemind_sim::time::SimDuration;

/// Which acceleration process occupies a region of the FPGA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FabricProcess {
    /// RoCE-style remote memory access between serverless functions.
    RemoteMemory,
    /// Full RPC stack offload for cloud↔edge and cloud↔cloud messages.
    RpcOffload,
}

impl fmt::Display for FabricProcess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricProcess::RemoteMemory => write!(f, "remote-memory"),
            FabricProcess::RpcOffload => write!(f, "rpc-offload"),
        }
    }
}

/// Transport selected by hard reconfiguration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Transport {
    /// Reliable, connection-oriented.
    #[default]
    Tcp,
    /// Datagram transport for latency-critical small RPCs.
    Udp,
}

/// A reconfiguration action and its cost class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconfigKind {
    /// Full/partial bitstream swap; takes on the order of a second and
    /// quiesces the fabric.
    Hard,
    /// Register-file update; microseconds, no quiesce.
    Soft,
}

/// Soft-register configuration exposed to the host over PCIe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoftRegisters {
    /// Number of CCI-P transfers batched per doorbell.
    pub ccip_batch: u32,
    /// Number of transmit/receive queue pairs provisioned.
    pub queue_pairs: u32,
    /// Entries per queue.
    pub queue_depth: u32,
    /// Concurrently active RPC flows.
    pub active_flows: u32,
    /// Load-balancing scheme across RPC processing threads.
    pub load_balance: LoadBalance,
}

/// RPC load-balancing schemes selectable by soft reconfiguration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoadBalance {
    /// Round-robin across processing threads.
    #[default]
    RoundRobin,
    /// Hash on the flow id (sticky placement; packets of one RPC stay on
    /// one thread — the paper processes packets to completion on a single
    /// thread).
    FlowHash,
}

impl Default for SoftRegisters {
    fn default() -> Self {
        SoftRegisters {
            ccip_batch: 4,
            queue_pairs: 8,
            queue_depth: 256,
            active_flows: 64,
            load_balance: LoadBalance::default(),
        }
    }
}

/// Construction parameters for [`FpgaFabric`].
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaConfig {
    /// Total LUTs on the device (Arria 10 GX1150 ≈ 1,150 k).
    pub total_luts: u64,
    /// Fraction of LUTs consumed by the remote-memory process (paper: 18 %).
    pub remote_mem_lut_frac: f64,
    /// Fraction of LUTs consumed by the RPC offload process (paper: 24 %).
    pub rpc_lut_frac: f64,
    /// Hard (bitstream) reconfiguration time.
    pub hard_reconfig: SimDuration,
    /// Soft (register) reconfiguration time.
    pub soft_reconfig: SimDuration,
}

impl Default for FpgaConfig {
    fn default() -> Self {
        FpgaConfig {
            total_luts: 1_150_000,
            remote_mem_lut_frac: 0.18,
            rpc_lut_frac: 0.24,
            hard_reconfig: SimDuration::from_secs(1),
            soft_reconfig: SimDuration::from_micros(20),
        }
    }
}

/// One FPGA board, statically partitioned between the two acceleration
/// processes.
///
/// # Examples
///
/// ```rust
/// use hivemind_accel::fpga::{FpgaFabric, FpgaConfig, FabricProcess, Transport};
///
/// let mut fpga = FpgaFabric::new(FpgaConfig::default());
/// assert!(fpga.supports(FabricProcess::RemoteMemory));
/// assert!(fpga.supports(FabricProcess::RpcOffload));
/// // Switching transports is a hard reconfiguration (≈ 1 s of downtime).
/// let cost = fpga.set_transport(Transport::Udp);
/// assert!(cost.as_secs_f64() >= 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaFabric {
    config: FpgaConfig,
    transport: Transport,
    registers: SoftRegisters,
    hard_reconfigs: u32,
    soft_reconfigs: u32,
}

impl FpgaFabric {
    /// Creates a fabric and checks the static partition fits the device.
    ///
    /// # Panics
    ///
    /// Panics if the two processes together exceed the LUT budget or a
    /// fraction is outside `[0, 1]`.
    pub fn new(config: FpgaConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.remote_mem_lut_frac)
                && (0.0..=1.0).contains(&config.rpc_lut_frac),
            "LUT fractions must be in [0, 1]"
        );
        assert!(
            config.remote_mem_lut_frac + config.rpc_lut_frac <= 1.0,
            "acceleration processes exceed the FPGA's LUT budget"
        );
        FpgaFabric {
            config,
            transport: Transport::default(),
            registers: SoftRegisters::default(),
            hard_reconfigs: 0,
            soft_reconfigs: 0,
        }
    }

    /// Whether the given process fits on this device (non-zero area).
    pub fn supports(&self, process: FabricProcess) -> bool {
        match process {
            FabricProcess::RemoteMemory => self.config.remote_mem_lut_frac > 0.0,
            FabricProcess::RpcOffload => self.config.rpc_lut_frac > 0.0,
        }
    }

    /// LUTs used by a process.
    pub fn luts_used(&self, process: FabricProcess) -> u64 {
        let frac = match process {
            FabricProcess::RemoteMemory => self.config.remote_mem_lut_frac,
            FabricProcess::RpcOffload => self.config.rpc_lut_frac,
        };
        (self.config.total_luts as f64 * frac) as u64
    }

    /// LUTs still free for other logic.
    pub fn luts_free(&self) -> u64 {
        self.config.total_luts
            - self.luts_used(FabricProcess::RemoteMemory)
            - self.luts_used(FabricProcess::RpcOffload)
    }

    /// Currently selected transport.
    pub fn transport(&self) -> Transport {
        self.transport
    }

    /// Selects the transport layer; a coarse-grained decision requiring
    /// hard reconfiguration. Returns the downtime incurred (zero when the
    /// transport is unchanged).
    pub fn set_transport(&mut self, transport: Transport) -> SimDuration {
        if self.transport == transport {
            return SimDuration::ZERO;
        }
        self.transport = transport;
        self.hard_reconfigs += 1;
        self.config.hard_reconfig
    }

    /// Current soft-register contents.
    pub fn registers(&self) -> &SoftRegisters {
        &self.registers
    }

    /// Applies a soft reconfiguration (per-application buffer/queue tuning,
    /// Sec. 4.5). Returns the (small) reconfiguration cost.
    ///
    /// # Panics
    ///
    /// Panics if `regs` provisions zero queues or zero flows.
    pub fn configure(&mut self, regs: SoftRegisters) -> SimDuration {
        assert!(
            regs.queue_pairs > 0 && regs.queue_depth > 0,
            "queues must be provisioned"
        );
        assert!(regs.active_flows > 0, "need at least one RPC flow");
        assert!(regs.ccip_batch > 0, "CCI-P batch must be at least 1");
        self.registers = regs;
        self.soft_reconfigs += 1;
        self.config.soft_reconfig
    }

    /// How many reconfigurations of each kind have occurred:
    /// `(hard, soft)`.
    pub fn reconfig_counts(&self) -> (u32, u32) {
        (self.hard_reconfigs, self.soft_reconfigs)
    }

    /// Cost of a reconfiguration of the given kind.
    pub fn reconfig_cost(&self, kind: ReconfigKind) -> SimDuration {
        match kind {
            ReconfigKind::Hard => self.config.hard_reconfig,
            ReconfigKind::Soft => self.config.soft_reconfig,
        }
    }

    /// Dynamically repartitions the fabric between the two acceleration
    /// processes. The paper statically partitions but notes "dynamic
    /// partitioning could be supported if needed" (Sec. 4.5); this is
    /// that extension — a partial bitstream swap, so it costs a hard
    /// reconfiguration and quiesces the fabric for that long.
    ///
    /// Returns the downtime (zero when the partition is unchanged).
    ///
    /// # Panics
    ///
    /// Panics if the requested fractions do not fit the device.
    pub fn repartition(&mut self, remote_mem_frac: f64, rpc_frac: f64) -> SimDuration {
        assert!(
            (0.0..=1.0).contains(&remote_mem_frac) && (0.0..=1.0).contains(&rpc_frac),
            "LUT fractions must be in [0, 1]"
        );
        assert!(
            remote_mem_frac + rpc_frac <= 1.0,
            "acceleration processes exceed the FPGA's LUT budget"
        );
        let unchanged = (self.config.remote_mem_lut_frac - remote_mem_frac).abs() < 1e-12
            && (self.config.rpc_lut_frac - rpc_frac).abs() < 1e-12;
        if unchanged {
            return SimDuration::ZERO;
        }
        self.config.remote_mem_lut_frac = remote_mem_frac;
        self.config.rpc_lut_frac = rpc_frac;
        self.hard_reconfigs += 1;
        self.config.hard_reconfig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_partition_matches_paper() {
        let f = FpgaFabric::new(FpgaConfig::default());
        let rm = f.luts_used(FabricProcess::RemoteMemory) as f64;
        let rpc = f.luts_used(FabricProcess::RpcOffload) as f64;
        let total = 1_150_000.0;
        assert!((rm / total - 0.18).abs() < 1e-6);
        assert!((rpc / total - 0.24).abs() < 1e-6);
        assert!(f.luts_free() > 0);
    }

    #[test]
    #[should_panic(expected = "LUT budget")]
    fn overcommitted_partition_rejected() {
        let _ = FpgaFabric::new(FpgaConfig {
            remote_mem_lut_frac: 0.6,
            rpc_lut_frac: 0.5,
            ..FpgaConfig::default()
        });
    }

    #[test]
    fn transport_change_is_hard_reconfig() {
        let mut f = FpgaFabric::new(FpgaConfig::default());
        assert_eq!(f.set_transport(Transport::Tcp), SimDuration::ZERO);
        let cost = f.set_transport(Transport::Udp);
        assert_eq!(cost, SimDuration::from_secs(1));
        assert_eq!(f.reconfig_counts(), (1, 0));
        assert_eq!(f.transport(), Transport::Udp);
    }

    #[test]
    fn soft_reconfig_is_cheap() {
        let mut f = FpgaFabric::new(FpgaConfig::default());
        let cost = f.configure(SoftRegisters {
            ccip_batch: 8,
            ..SoftRegisters::default()
        });
        assert!(cost < SimDuration::from_millis(1));
        assert_eq!(f.reconfig_counts(), (0, 1));
        assert_eq!(f.registers().ccip_batch, 8);
    }

    #[test]
    #[should_panic(expected = "provisioned")]
    fn zero_queues_rejected() {
        let mut f = FpgaFabric::new(FpgaConfig::default());
        let _ = f.configure(SoftRegisters {
            queue_pairs: 0,
            ..SoftRegisters::default()
        });
    }

    #[test]
    fn dynamic_repartition_is_a_hard_reconfig() {
        let mut f = FpgaFabric::new(FpgaConfig::default());
        // Shift area from RPC offload to remote memory.
        let cost = f.repartition(0.30, 0.12);
        assert_eq!(cost, SimDuration::from_secs(1));
        assert_eq!(f.reconfig_counts(), (1, 0));
        assert!(f.luts_used(FabricProcess::RemoteMemory) > f.luts_used(FabricProcess::RpcOffload));
        // A no-op repartition is free.
        assert_eq!(f.repartition(0.30, 0.12), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "LUT budget")]
    fn repartition_rejects_overcommit() {
        let mut f = FpgaFabric::new(FpgaConfig::default());
        let _ = f.repartition(0.7, 0.5);
    }

    #[test]
    fn disabled_process_not_supported() {
        let f = FpgaFabric::new(FpgaConfig {
            remote_mem_lut_frac: 0.0,
            ..FpgaConfig::default()
        });
        assert!(!f.supports(FabricProcess::RemoteMemory));
        assert!(f.supports(FabricProcess::RpcOffload));
    }
}

//! Integration across the application kernels: the semantic pipelines the
//! missions rely on, run end to end without the simulator.

use hivemind_apps::kernels::dedup::{deduplicate, score, Observation};
use hivemind_apps::kernels::embedding::{observe, Gallery};
use hivemind_apps::kernels::ocr::{parse_instruction, recognize, Instruction, SignImage};
use hivemind_apps::kernels::slam::{localize, odometry_frame, OccupancyGrid, World};
use hivemind_apps::kernels::svm::{tag_dataset, LinearSvm};
use hivemind_apps::kernels::weather::{analyze, Reading};
use hivemind_sim::rng::RngForge;
use hivemind_swarm::maze::{wall_follower, Maze};
use rand::Rng;

/// A full Scenario-B recognition pipeline: drones photograph moving
/// people, a gallery identifies known faces, the dedup stage counts
/// unique individuals, and accuracy is scored against ground truth.
#[test]
fn scenario_b_recognition_pipeline() {
    let mut rng = RngForge::new(41).stream("pipeline");
    let people = 25u32;
    let gallery = Gallery::with_identities(0..people);

    let mut observations = Vec::new();
    let mut identified = 0;
    for pass in 0..3u32 {
        for person in 0..people {
            // The first sweep photographs everyone; later sweeps are
            // opportunistic.
            if pass == 0 || rng.gen::<f64>() < 0.8 {
                let sample = observe(person, 0.03, &mut rng);
                if gallery.identify(&sample, 0.8) == Some(person) {
                    identified += 1;
                }
                observations.push(Observation {
                    device: (person + pass) % 16,
                    embedding: sample,
                    truth: person,
                });
            }
        }
    }
    assert!(identified as f64 / observations.len() as f64 > 0.95);
    let result = deduplicate(&observations, 0.8);
    let (correct, under, over) = score(&observations, &result);
    assert_eq!(under + over, 0, "clean embeddings dedup exactly");
    assert_eq!(correct, 25);
}

/// The Treasure-Hunt chain: render → photograph (noise) → OCR → parse →
/// act, across a whole instruction course.
#[test]
fn treasure_hunt_instruction_chain() {
    let mut rng = RngForge::new(42).stream("hunt");
    let course = ["N3", "E7", "S2", "W4", "E1", "G"];
    let mut pos = (10i64, 10i64);
    let mut reached_goal = false;
    for truth in course {
        // Up to three photographs per panel, as the mission allows.
        let mut read = None;
        for _ in 0..3 {
            let img = SignImage::render(truth).with_noise(0.05, &mut rng);
            let text = recognize(&img);
            if text == truth {
                read = parse_instruction(&text);
                break;
            }
        }
        match read.expect("three attempts suffice at 5% pixel noise") {
            Instruction::Goal => {
                reached_goal = true;
                break;
            }
            Instruction::Move { dir, steps } => {
                let (dx, dy) = match dir {
                    'N' => (0, 1),
                    'E' => (1, 0),
                    'S' => (0, -1),
                    _ => (-1, 0),
                };
                pos = (pos.0 + dx * steps as i64, pos.1 + dy * steps as i64);
            }
        }
    }
    assert!(reached_goal);
    assert_eq!(pos, (10 + 7 - 4 + 1, 10 + 3 - 2));
}

/// SLAM + navigation: map a walled world from a survey, then localize a
/// drifted robot repeatedly as it walks a corridor.
#[test]
fn slam_supports_sustained_navigation() {
    let mut world = World::new(50, 50);
    for i in 0..50 {
        world.add_obstacle(i, 0);
        world.add_obstacle(i, 49);
        world.add_obstacle(0, i);
        world.add_obstacle(49, i);
    }
    for i in 10..40 {
        world.add_obstacle(i, 25);
    }
    let mut map = OccupancyGrid::new(50, 50);
    for x in (5..45).step_by(5) {
        for y in [10u32, 20, 40] {
            for _ in 0..2 {
                map.integrate((x, y), &world.scan_from((x, y), 50));
            }
        }
    }
    assert!(map.coverage() > 0.3, "survey mapped the world");

    let mut recovered = 0;
    let mut total = 0;
    for x in (8..40).step_by(4) {
        let true_pose = (x, 12u32);
        let drift = ((x + 2).min(49), 13u32);
        let scan = odometry_frame(&world.scan_from(true_pose, 50), true_pose, drift);
        total += 1;
        if localize(&map, drift, &scan, 3) == true_pose {
            recovered += 1;
        }
    }
    assert!(
        recovered * 10 >= total * 6,
        "scan matching recovers most poses: {recovered}/{total}"
    );
}

/// The obstacle-avoidance classifier story: an SVM trained on the swarm's
/// pooled data beats one trained on a single device's share.
#[test]
fn swarm_pooling_helps_the_svm() {
    let mut rng = RngForge::new(43).stream("svm");
    let swarm_data = tag_dataset(&mut rng, 640, 8, 0.8);
    let test = tag_dataset(&mut rng, 400, 8, 0.8);

    let mut single = LinearSvm::new(8, 0.01);
    single.fit(&swarm_data[..40], 3); // one device's 1/16 share
    let mut pooled = LinearSvm::new(8, 0.01);
    pooled.fit(&swarm_data, 3);

    assert!(
        pooled.accuracy(&test) >= single.accuracy(&test),
        "pooled {} vs single {}",
        pooled.accuracy(&test),
        single.accuracy(&test)
    );
}

/// Weather analytics on a synthetic day: the forecast flips from clear to
/// rain as the air saturates.
#[test]
fn weather_forecast_tracks_conditions() {
    let morning: Vec<Reading> = (0..60)
        .map(|i| Reading {
            t: i as f64,
            temperature: 18.0 + 0.05 * i as f64,
            humidity: 55.0 - 0.1 * i as f64,
        })
        .collect();
    assert!(!analyze(&morning, 120.0).rain_likely);

    let evening: Vec<Reading> = (0..60)
        .map(|i| Reading {
            t: i as f64,
            temperature: 16.0 - 0.04 * i as f64,
            humidity: (88.0 + 0.2 * i as f64).min(100.0),
        })
        .collect();
    assert!(analyze(&evening, 120.0).rain_likely);
}

/// Maze generation + wall following stays robust across shapes and seeds
/// (the cars' mission substrate).
#[test]
fn maze_course_statistics() {
    let mut total_steps = 0usize;
    let mut runs = 0usize;
    for seed in 0..30u64 {
        for (w, h) in [(8u32, 8u32), (12, 9), (20, 5)] {
            let maze = Maze::generate(w, h, RngForge::new(seed));
            let t = wall_follower(&maze);
            assert!(t.reached);
            // The wall follower never takes more than twice every passage
            // in each direction.
            assert!(t.steps() <= 4 * (w * h) as usize);
            total_steps += t.steps();
            runs += 1;
        }
    }
    let mean = total_steps as f64 / runs as f64;
    assert!(mean > 10.0, "non-trivial courses, mean steps {mean}");
}

//! Real algorithmic kernels behind the benchmark suite.
//!
//! The latency figures need only cost profiles, but the *semantic*
//! results — how many tennis balls were found, how many unique people were
//! counted, what a sign says — come from these working implementations:
//!
//! * [`svm`] — linear SVM trained by SGD (S3 drone detection: the paper
//!   trains an SVM on the drones' orange tags).
//! * [`embedding`] — a FaceNet-style identity embedding space where
//!   Euclidean distance encodes face similarity (S1, S5).
//! * [`dedup`] — union-find clustering over embeddings to count unique
//!   people (S5, Scenario B).
//! * [`weather`] — least-squares regression over temperature/humidity
//!   series (S7).
//! * [`soil`] — soil-hydration estimation from humidity plus image
//!   features (S8).
//! * [`ocr`] — template-matching OCR over a 5×7 bitmap font (S9, and the
//!   Treasure Hunt instruction panels).
//! * [`slam`] — log-odds occupancy-grid mapping with scan-matching
//!   localization (S10).
//!
//! S6 (maze traversal) lives in [`hivemind_swarm::maze`].

pub mod dedup;
pub mod embedding;
pub mod ocr;
pub mod slam;
pub mod soil;
pub mod svm;
pub mod weather;

//! Text recognition (S9): template-matching OCR on a 5×7 bitmap font.
//!
//! S9 performs "image to text conversion of signs" (Sec. 2.1), and the
//! robotic cars' Treasure Hunt reads instruction panels telling them
//! "where to move next" (Sec. 5.5). The alphabet covers the digits and
//! the compass letters those panels use (e.g. `"N3"` = move 3 cells
//! north, `"G"` = goal). Recognition renders each character cell and
//! picks the glyph with the minimum Hamming distance — robust to the
//! salt-and-pepper noise a real camera pipeline would leave after
//! binarization.

use rand::Rng;

/// Glyph width in pixels.
pub const GLYPH_W: usize = 5;
/// Glyph height in pixels.
pub const GLYPH_H: usize = 7;

/// The supported alphabet.
pub const ALPHABET: &[char] = &[
    '0', '1', '2', '3', '4', '5', '6', '7', '8', '9', 'N', 'E', 'S', 'W', 'G',
];

/// 5×7 glyph bitmaps; each byte is one row, low 5 bits used, MSB-left.
fn glyph(c: char) -> Option<[u8; GLYPH_H]> {
    let g = match c {
        '0' => [
            0b01110, 0b10001, 0b10011, 0b10101, 0b11001, 0b10001, 0b01110,
        ],
        '1' => [
            0b00100, 0b01100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110,
        ],
        '2' => [
            0b01110, 0b10001, 0b00001, 0b00010, 0b00100, 0b01000, 0b11111,
        ],
        '3' => [
            0b11111, 0b00010, 0b00100, 0b00010, 0b00001, 0b10001, 0b01110,
        ],
        '4' => [
            0b00010, 0b00110, 0b01010, 0b10010, 0b11111, 0b00010, 0b00010,
        ],
        '5' => [
            0b11111, 0b10000, 0b11110, 0b00001, 0b00001, 0b10001, 0b01110,
        ],
        '6' => [
            0b00110, 0b01000, 0b10000, 0b11110, 0b10001, 0b10001, 0b01110,
        ],
        '7' => [
            0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b01000, 0b01000,
        ],
        '8' => [
            0b01110, 0b10001, 0b10001, 0b01110, 0b10001, 0b10001, 0b01110,
        ],
        '9' => [
            0b01110, 0b10001, 0b10001, 0b01111, 0b00001, 0b00010, 0b01100,
        ],
        'N' => [
            0b10001, 0b11001, 0b10101, 0b10011, 0b10001, 0b10001, 0b10001,
        ],
        'E' => [
            0b11111, 0b10000, 0b10000, 0b11110, 0b10000, 0b10000, 0b11111,
        ],
        'S' => [
            0b01111, 0b10000, 0b10000, 0b01110, 0b00001, 0b00001, 0b11110,
        ],
        'W' => [
            0b10001, 0b10001, 0b10001, 0b10101, 0b10101, 0b10101, 0b01010,
        ],
        'G' => [
            0b01110, 0b10001, 0b10000, 0b10111, 0b10001, 0b10001, 0b01111,
        ],
        _ => return None,
    };
    Some(g)
}

/// A binarized sign image: one row of character cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignImage {
    chars: usize,
    /// Row-major bits, `chars * GLYPH_W` wide, `GLYPH_H` tall.
    bits: Vec<bool>,
}

impl SignImage {
    /// Renders `text` into a clean bitmap.
    ///
    /// # Panics
    ///
    /// Panics if `text` is empty or contains characters outside
    /// [`ALPHABET`].
    pub fn render(text: &str) -> SignImage {
        assert!(!text.is_empty(), "sign text must be non-empty");
        let glyphs: Vec<[u8; GLYPH_H]> = text
            .chars()
            .map(|c| glyph(c).unwrap_or_else(|| panic!("unsupported character {c:?}")))
            .collect();
        let chars = glyphs.len();
        let width = chars * GLYPH_W;
        let mut bits = vec![false; width * GLYPH_H];
        for (ci, g) in glyphs.iter().enumerate() {
            for (row, &rowbits) in g.iter().enumerate() {
                for col in 0..GLYPH_W {
                    let on = rowbits & (1 << (GLYPH_W - 1 - col)) != 0;
                    bits[row * width + ci * GLYPH_W + col] = on;
                }
            }
        }
        SignImage { chars, bits }
    }

    /// Flips each pixel independently with probability `p` (camera noise
    /// surviving binarization).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn with_noise<R: Rng + ?Sized>(mut self, p: f64, rng: &mut R) -> SignImage {
        assert!((0.0..=1.0).contains(&p), "noise probability in [0, 1]");
        for b in &mut self.bits {
            if rng.gen::<f64>() < p {
                *b = !*b;
            }
        }
        self
    }

    /// Number of character cells.
    pub fn char_count(&self) -> usize {
        self.chars
    }

    fn cell_bits(&self, ci: usize) -> Vec<bool> {
        let width = self.chars * GLYPH_W;
        let mut out = Vec::with_capacity(GLYPH_W * GLYPH_H);
        for row in 0..GLYPH_H {
            for col in 0..GLYPH_W {
                out.push(self.bits[row * width + ci * GLYPH_W + col]);
            }
        }
        out
    }
}

fn hamming_to_glyph(cell: &[bool], g: &[u8; GLYPH_H]) -> u32 {
    let mut d = 0;
    for row in 0..GLYPH_H {
        for col in 0..GLYPH_W {
            let on = g[row] & (1 << (GLYPH_W - 1 - col)) != 0;
            if on != cell[row * GLYPH_W + col] {
                d += 1;
            }
        }
    }
    d
}

/// Recognizes the text on a sign by nearest-template matching.
///
/// # Examples
///
/// ```rust
/// use hivemind_apps::kernels::ocr::{recognize, SignImage};
/// use hivemind_sim::rng::RngForge;
///
/// let mut rng = RngForge::new(1).stream("ocr");
/// let noisy = SignImage::render("N3").with_noise(0.05, &mut rng);
/// assert_eq!(recognize(&noisy), "N3");
/// ```
pub fn recognize(image: &SignImage) -> String {
    (0..image.char_count())
        .map(|ci| {
            let cell = image.cell_bits(ci);
            ALPHABET
                .iter()
                .map(|&c| {
                    (
                        hamming_to_glyph(&cell, &glyph(c).expect("alphabet member")),
                        c,
                    )
                })
                .min_by_key(|&(d, _)| d)
                .map(|(_, c)| c)
                .expect("alphabet is non-empty")
        })
        .collect()
}

/// A parsed Treasure-Hunt instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instruction {
    /// Move `steps` cells in a compass direction (`'N' | 'E' | 'S' | 'W'`).
    Move {
        /// Compass direction letter.
        dir: char,
        /// Number of cells.
        steps: u32,
    },
    /// This panel is the final target.
    Goal,
}

/// Parses recognized panel text (`"N3"`, `"W12"`, `"G"`).
///
/// Returns `None` for garbled text — the mission layer treats that as a
/// failed recognition and re-photographs the panel.
pub fn parse_instruction(text: &str) -> Option<Instruction> {
    let mut chars = text.chars();
    let head = chars.next()?;
    if head == 'G' && chars.clone().next().is_none() {
        return Some(Instruction::Goal);
    }
    if !"NESW".contains(head) {
        return None;
    }
    let rest: String = chars.collect();
    if rest.is_empty() || !rest.chars().all(|c| c.is_ascii_digit()) {
        return None;
    }
    Some(Instruction::Move {
        dir: head,
        steps: rest.parse().ok()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hivemind_sim::rng::RngForge;

    #[test]
    fn clean_rendering_roundtrips() {
        for text in ["0123456789", "NESW", "G", "N3", "W12"] {
            let img = SignImage::render(text);
            assert_eq!(recognize(&img), text, "text {text:?}");
        }
    }

    #[test]
    fn glyphs_are_distinct() {
        // Every glyph pair differs in several pixels; otherwise noise
        // tolerance would be impossible.
        for &a in ALPHABET {
            for &b in ALPHABET {
                if a == b {
                    continue;
                }
                let cell = SignImage::render(&a.to_string()).cell_bits(0);
                let d = hamming_to_glyph(&cell, &glyph(b).unwrap());
                assert!(d >= 3, "glyphs {a} and {b} differ by only {d} pixels");
            }
        }
    }

    #[test]
    fn moderate_noise_still_recognized() {
        let mut rng = RngForge::new(2).stream("ocr");
        let mut correct = 0;
        for trial in 0..100 {
            let text = ["N3", "E7", "S2", "W9", "G"][trial % 5];
            let img = SignImage::render(text).with_noise(0.06, &mut rng);
            if recognize(&img) == text {
                correct += 1;
            }
        }
        assert!(correct >= 90, "correct {correct}/100");
    }

    #[test]
    fn heavy_noise_degrades() {
        let mut rng = RngForge::new(3).stream("ocr");
        let mut correct = 0;
        for _ in 0..100 {
            let img = SignImage::render("N3").with_noise(0.4, &mut rng);
            if recognize(&img) == "N3" {
                correct += 1;
            }
        }
        assert!(
            correct < 90,
            "40% pixel flips must cause errors, got {correct}"
        );
    }

    #[test]
    fn instruction_parsing() {
        assert_eq!(
            parse_instruction("N3"),
            Some(Instruction::Move { dir: 'N', steps: 3 })
        );
        assert_eq!(
            parse_instruction("W12"),
            Some(Instruction::Move {
                dir: 'W',
                steps: 12
            })
        );
        assert_eq!(parse_instruction("G"), Some(Instruction::Goal));
        assert_eq!(parse_instruction(""), None);
        assert_eq!(parse_instruction("3N"), None);
        assert_eq!(parse_instruction("N"), None);
        assert_eq!(parse_instruction("GG"), None);
    }

    #[test]
    #[should_panic(expected = "unsupported character")]
    fn unsupported_character_panics() {
        let _ = SignImage::render("N3X");
    }
}

//! Weather analytics (S7): prediction from temperature/humidity series.
//!
//! The drones carry thermometer and hygrometer sensors; S7 performs
//! "weather prediction based on temperature and humidity levels in sensor
//! data" (Sec. 2.1). We implement ordinary least squares over a sliding
//! window of readings to fit local trends and extrapolate, plus a simple
//! dew-point-style rain indicator — the kind of lightweight analytics that
//! runs comparably on cloud and edge.

/// One sensor reading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reading {
    /// Seconds since mission start.
    pub t: f64,
    /// Temperature, °C.
    pub temperature: f64,
    /// Relative humidity, percent.
    pub humidity: f64,
}

/// Least-squares line `y = slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trend {
    /// Slope per second.
    pub slope: f64,
    /// Intercept at `t = 0`.
    pub intercept: f64,
}

impl Trend {
    /// Evaluates the trend at time `t`.
    pub fn at(&self, t: f64) -> f64 {
        self.slope * t + self.intercept
    }
}

/// Fits an OLS trend to `(t, y)` pairs.
///
/// Returns `None` with fewer than two distinct time points.
pub fn fit_trend(points: &[(f64, f64)]) -> Option<Trend> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    Some(Trend { slope, intercept })
}

/// Magnus-formula dew point, °C.
pub fn dew_point(temperature: f64, humidity: f64) -> f64 {
    let h = humidity.clamp(1.0, 100.0);
    let gamma = (h / 100.0).ln() + (17.62 * temperature) / (243.12 + temperature);
    243.12 * gamma / (17.62 - gamma)
}

/// A weather forecast from a window of readings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Forecast {
    /// Predicted temperature at `horizon` seconds past the last reading.
    pub temperature: f64,
    /// Predicted humidity at the horizon (clamped to `[0, 100]`).
    pub humidity: f64,
    /// Whether conditions point to precipitation (dew-point spread < 2 °C
    /// and humidity rising).
    pub rain_likely: bool,
}

/// Runs the S7 analytic over a reading window.
///
/// # Panics
///
/// Panics if `readings` has fewer than two samples.
///
/// # Examples
///
/// ```rust
/// use hivemind_apps::kernels::weather::{analyze, Reading};
///
/// let readings: Vec<Reading> = (0..10)
///     .map(|i| Reading { t: i as f64, temperature: 20.0 + 0.1 * i as f64, humidity: 60.0 })
///     .collect();
/// let f = analyze(&readings, 30.0);
/// assert!((f.temperature - 23.9).abs() < 0.2, "trend extrapolates");
/// assert!(!f.rain_likely);
/// ```
pub fn analyze(readings: &[Reading], horizon: f64) -> Forecast {
    assert!(readings.len() >= 2, "need at least two readings");
    let temp_pts: Vec<(f64, f64)> = readings.iter().map(|r| (r.t, r.temperature)).collect();
    let hum_pts: Vec<(f64, f64)> = readings.iter().map(|r| (r.t, r.humidity)).collect();
    let t_end = readings.last().expect("non-empty").t + horizon;
    let temp_trend = fit_trend(&temp_pts).expect("two readings fit a line");
    let hum_trend = fit_trend(&hum_pts).expect("two readings fit a line");
    let temperature = temp_trend.at(t_end);
    let humidity = hum_trend.at(t_end).clamp(0.0, 100.0);
    let spread = temperature - dew_point(temperature, humidity);
    Forecast {
        temperature,
        humidity,
        rain_likely: spread < 2.0 && hum_trend.slope >= 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(temp0: f64, tslope: f64, hum0: f64, hslope: f64, n: usize) -> Vec<Reading> {
        (0..n)
            .map(|i| Reading {
                t: i as f64,
                temperature: temp0 + tslope * i as f64,
                humidity: (hum0 + hslope * i as f64).clamp(0.0, 100.0),
            })
            .collect()
    }

    #[test]
    fn trend_recovers_exact_line() {
        let pts: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let t = fit_trend(&pts).unwrap();
        assert!((t.slope - 2.0).abs() < 1e-9);
        assert!((t.intercept - 3.0).abs() < 1e-9);
    }

    #[test]
    fn trend_needs_two_distinct_points() {
        assert!(fit_trend(&[(1.0, 2.0)]).is_none());
        assert!(fit_trend(&[(1.0, 2.0), (1.0, 5.0)]).is_none());
    }

    #[test]
    fn dew_point_saturated_air() {
        // At 100% humidity the dew point equals the temperature.
        assert!((dew_point(20.0, 100.0) - 20.0).abs() < 0.01);
        // Dry air has a much lower dew point.
        assert!(dew_point(20.0, 30.0) < 5.0);
    }

    #[test]
    fn humid_cooling_evening_predicts_rain() {
        // Humidity climbing to saturation while temperature falls.
        let readings = series(18.0, -0.05, 90.0, 0.3, 40);
        let f = analyze(&readings, 60.0);
        assert!(f.rain_likely, "forecast {f:?}");
    }

    #[test]
    fn dry_warming_morning_predicts_clear() {
        let readings = series(22.0, 0.05, 40.0, -0.1, 40);
        let f = analyze(&readings, 60.0);
        assert!(!f.rain_likely, "forecast {f:?}");
        assert!(f.temperature > 22.0);
    }

    #[test]
    fn humidity_is_clamped() {
        let readings = series(20.0, 0.0, 95.0, 1.0, 30);
        let f = analyze(&readings, 600.0);
        assert!(f.humidity <= 100.0);
    }

    #[test]
    #[should_panic(expected = "two readings")]
    fn single_reading_panics() {
        let _ = analyze(
            &[Reading {
                t: 0.0,
                temperature: 20.0,
                humidity: 50.0,
            }],
            10.0,
        );
    }
}

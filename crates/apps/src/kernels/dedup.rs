//! People deduplication by embedding clustering.
//!
//! In Scenario B "the same person may be photographed by multiple drones,
//! requiring disambiguation" (Sec. 2.1). Deduplication runs after a
//! synchronization barrier over all recognition outputs: observations whose
//! embeddings fall within a distance threshold are merged with union-find,
//! and the number of clusters is the swarm's answer for "how many unique
//! people are in the field".

use crate::kernels::embedding::{distance, Embedding};

/// Disjoint-set forest with path compression and union by rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Finds the representative of `x`'s set.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn find(&mut self, x: usize) -> usize {
        assert!(x < self.parent.len(), "element out of range");
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were
    /// distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.sets -= 1;
        true
    }

    /// Current number of disjoint sets.
    pub fn set_count(&self) -> usize {
        self.sets
    }
}

/// One face observation carried to the deduplication stage.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Which device captured it (provenance, not used for merging).
    pub device: u32,
    /// The embedding extracted by the recognition stage.
    pub embedding: Embedding,
    /// Ground-truth identity (hidden from the algorithm; used only to
    /// score accuracy).
    pub truth: u32,
}

/// Result of deduplicating a batch of observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DedupResult {
    /// Estimated number of unique people.
    pub unique_count: usize,
    /// Cluster assignment per observation (cluster representative index).
    pub clusters: Vec<usize>,
}

/// Clusters observations whose embeddings are within `threshold` and
/// counts unique people.
///
/// # Examples
///
/// ```rust
/// use hivemind_apps::kernels::dedup::{deduplicate, Observation};
/// use hivemind_apps::kernels::embedding::observe;
/// use hivemind_sim::rng::RngForge;
///
/// let mut rng = RngForge::new(1).stream("dedup");
/// // Three observations of two people, from different drones.
/// let obs: Vec<Observation> = [(0u32, 5u32), (1, 5), (2, 9)]
///     .iter()
///     .map(|&(device, person)| Observation {
///         device,
///         embedding: observe(person, 0.03, &mut rng),
///         truth: person,
///     })
///     .collect();
/// let result = deduplicate(&obs, 0.8);
/// assert_eq!(result.unique_count, 2);
/// ```
pub fn deduplicate(observations: &[Observation], threshold: f64) -> DedupResult {
    let n = observations.len();
    let mut uf = UnionFind::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if distance(&observations[i].embedding, &observations[j].embedding) <= threshold {
                uf.union(i, j);
            }
        }
    }
    let clusters = (0..n).map(|i| uf.find(i)).collect();
    DedupResult {
        unique_count: uf.set_count(),
        clusters,
    }
}

/// Scores a dedup run against ground truth: returns
/// `(correct_unique, undercount, overcount)` where `undercount` is how
/// many real people were lost by over-merging and `overcount` how many
/// phantom people were invented by under-merging.
pub fn score(observations: &[Observation], result: &DedupResult) -> (usize, usize, usize) {
    use std::collections::HashSet;
    let truth: HashSet<u32> = observations.iter().map(|o| o.truth).collect();
    let real = truth.len();
    let estimated = result.unique_count;
    if estimated >= real {
        (real, 0, estimated - real)
    } else {
        (estimated, real - estimated, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::embedding::observe;
    use hivemind_sim::rng::RngForge;

    fn make_observations(people: u32, per_person: u32, sigma: f64, seed: u64) -> Vec<Observation> {
        let mut rng = RngForge::new(seed).stream("dedup");
        let mut out = Vec::new();
        for person in 0..people {
            for rep in 0..per_person {
                out.push(Observation {
                    device: rep % 16,
                    embedding: observe(person, sigma, &mut rng),
                    truth: person,
                });
            }
        }
        out
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.set_count(), 5);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0), "already merged");
        assert!(uf.union(2, 3));
        assert_eq!(uf.set_count(), 3);
        assert_eq!(uf.find(0), uf.find(1));
        assert_ne!(uf.find(0), uf.find(4));
    }

    #[test]
    fn counts_25_people_seen_multiple_times() {
        // The paper's Scenario B: 25 people, each photographed by several
        // drones.
        let obs = make_observations(25, 4, 0.03, 1);
        let result = deduplicate(&obs, 0.8);
        assert_eq!(result.unique_count, 25);
        let (correct, under, over) = score(&obs, &result);
        assert_eq!((correct, under, over), (25, 0, 0));
    }

    #[test]
    fn noisy_embeddings_overcount() {
        let obs = make_observations(10, 4, 0.9, 2);
        let result = deduplicate(&obs, 0.5);
        // With heavy noise and a tight threshold, clusters fracture.
        assert!(result.unique_count > 10, "got {}", result.unique_count);
        let (_, _, over) = score(&obs, &result);
        assert!(over > 0);
    }

    #[test]
    fn huge_threshold_merges_everyone() {
        let obs = make_observations(5, 2, 0.03, 3);
        let result = deduplicate(&obs, 10.0);
        assert_eq!(result.unique_count, 1);
        let (correct, under, _) = score(&obs, &result);
        assert_eq!(correct, 1);
        assert_eq!(under, 4);
    }

    #[test]
    fn cluster_assignments_are_consistent() {
        let obs = make_observations(4, 3, 0.03, 4);
        let result = deduplicate(&obs, 0.8);
        for (i, oi) in obs.iter().enumerate() {
            for (j, oj) in obs.iter().enumerate() {
                if oi.truth == oj.truth {
                    assert_eq!(
                        result.clusters[i], result.clusters[j],
                        "same person split into clusters"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_input() {
        let result = deduplicate(&[], 0.8);
        assert_eq!(result.unique_count, 0);
        assert!(result.clusters.is_empty());
    }
}

//! Soil analytics (S8): hydration estimation from images + humidity.
//!
//! S8 performs "estimation of soil hydration from images and humidity
//! sensor" (Sec. 2.1). The image contribution is the darkness/saturation
//! signature of wet soil; we compute it from a real (synthetic-pixel)
//! image patch, then fuse it with the hygrometer reading.

use rand::Rng;

/// An 8-bit RGB image patch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Patch {
    width: u32,
    height: u32,
    /// Row-major RGB triples.
    pixels: Vec<[u8; 3]>,
}

impl Patch {
    /// Creates a patch from raw pixels.
    ///
    /// # Panics
    ///
    /// Panics if `pixels.len() != width * height` or the patch is empty.
    pub fn new(width: u32, height: u32, pixels: Vec<[u8; 3]>) -> Patch {
        assert!(width > 0 && height > 0, "patch must be non-empty");
        assert_eq!(
            pixels.len(),
            (width * height) as usize,
            "pixel count mismatch"
        );
        Patch {
            width,
            height,
            pixels,
        }
    }

    /// Synthesizes a soil patch at `moisture ∈ [0, 1]`: wetter soil is
    /// darker and slightly bluer.
    pub fn synthesize_soil<R: Rng + ?Sized>(moisture: f64, rng: &mut R) -> Patch {
        assert!((0.0..=1.0).contains(&moisture), "moisture in [0, 1]");
        let (w, h) = (16u32, 16u32);
        let base = 150.0 - 90.0 * moisture; // dry ≈ 150, wet ≈ 60
        let pixels = (0..w * h)
            .map(|_| {
                let jitter = rng.gen_range(-12.0..12.0);
                let v = (base + jitter).clamp(0.0, 255.0);
                let r = v as u8;
                let g = (v * 0.82) as u8;
                let b = (v * 0.62 + 18.0 * moisture) as u8;
                [r, g, b]
            })
            .collect();
        Patch::new(w, h, pixels)
    }

    /// Mean luminance in `[0, 255]`.
    pub fn mean_luminance(&self) -> f64 {
        let total: f64 = self
            .pixels
            .iter()
            .map(|[r, g, b]| 0.299 * *r as f64 + 0.587 * *g as f64 + 0.114 * *b as f64)
            .sum();
        total / self.pixels.len() as f64
    }
}

/// Fused hydration estimate in `[0, 1]`.
///
/// Combines the image darkness cue (wet soil is dark) with the air
/// humidity reading; weights favour the direct visual evidence.
///
/// # Examples
///
/// ```rust
/// use hivemind_apps::kernels::soil::{estimate_hydration, Patch};
/// use hivemind_sim::rng::RngForge;
///
/// let mut rng = RngForge::new(1).stream("soil");
/// let wet = Patch::synthesize_soil(0.9, &mut rng);
/// let dry = Patch::synthesize_soil(0.1, &mut rng);
/// let wet_est = estimate_hydration(&wet, 80.0);
/// let dry_est = estimate_hydration(&dry, 30.0);
/// assert!(wet_est > dry_est + 0.3);
/// ```
pub fn estimate_hydration(patch: &Patch, humidity_pct: f64) -> f64 {
    let lum = patch.mean_luminance();
    // Invert the synthesis model: lum(m) = 0.851·(150 − 90 m) + 2.05 m
    //                                   ≈ 127.65 − 74.54 m.
    let visual = ((127.65 - lum) / 74.54).clamp(0.0, 1.0);
    let humid = (humidity_pct / 100.0).clamp(0.0, 1.0);
    (0.75 * visual + 0.25 * humid).clamp(0.0, 1.0)
}

/// Classifies hydration for irrigation decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SoilState {
    /// Needs irrigation.
    Dry,
    /// Healthy range.
    Moist,
    /// Over-watered / standing water risk.
    Saturated,
}

/// Thresholds an estimate into a [`SoilState`].
pub fn classify(hydration: f64) -> SoilState {
    if hydration < 0.35 {
        SoilState::Dry
    } else if hydration < 0.75 {
        SoilState::Moist
    } else {
        SoilState::Saturated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hivemind_sim::rng::RngForge;

    #[test]
    fn wetter_soil_is_darker() {
        let mut rng = RngForge::new(2).stream("soil");
        let dry = Patch::synthesize_soil(0.0, &mut rng);
        let wet = Patch::synthesize_soil(1.0, &mut rng);
        assert!(dry.mean_luminance() > wet.mean_luminance() + 40.0);
    }

    #[test]
    fn estimate_is_monotone_in_moisture() {
        let mut rng = RngForge::new(3).stream("soil");
        let mut last = -1.0;
        for step in 0..5 {
            let m = step as f64 / 4.0;
            let patch = Patch::synthesize_soil(m, &mut rng);
            let est = estimate_hydration(&patch, 50.0);
            assert!(est > last, "estimate must increase with moisture");
            last = est;
        }
    }

    #[test]
    fn humidity_nudges_the_estimate() {
        let mut rng = RngForge::new(4).stream("soil");
        let patch = Patch::synthesize_soil(0.5, &mut rng);
        assert!(estimate_hydration(&patch, 90.0) > estimate_hydration(&patch, 10.0));
    }

    #[test]
    fn classification_thresholds() {
        assert_eq!(classify(0.1), SoilState::Dry);
        assert_eq!(classify(0.5), SoilState::Moist);
        assert_eq!(classify(0.9), SoilState::Saturated);
    }

    #[test]
    fn end_to_end_classification_recovers_state() {
        let mut rng = RngForge::new(5).stream("soil");
        let dry = Patch::synthesize_soil(0.05, &mut rng);
        let wet = Patch::synthesize_soil(0.95, &mut rng);
        assert_eq!(classify(estimate_hydration(&dry, 20.0)), SoilState::Dry);
        assert_eq!(
            classify(estimate_hydration(&wet, 85.0)),
            SoilState::Saturated
        );
    }

    #[test]
    #[should_panic(expected = "pixel count")]
    fn bad_pixel_count_panics() {
        let _ = Patch::new(2, 2, vec![[0, 0, 0]]);
    }
}

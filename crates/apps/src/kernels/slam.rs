//! SLAM (S10): occupancy-grid mapping with scan-matching localization.
//!
//! The drones run "simultaneous localization and mapping … using image
//! and sensor data" (Sec. 2.1, via ORB-SLAM on the testbed). We implement
//! the classic 2-D grid formulation: the robot carries a ray-cast range
//! sensor; each scan is matched against the map built so far to correct
//! pose drift (localization), then integrated into per-cell log-odds
//! (mapping).

/// Log-odds occupancy grid.
#[derive(Debug, Clone, PartialEq)]
pub struct OccupancyGrid {
    width: u32,
    height: u32,
    log_odds: Vec<f64>,
}

/// Increment applied to a cell observed occupied.
const L_OCC: f64 = 0.85;
/// Decrement applied to a cell observed free.
const L_FREE: f64 = -0.4;
/// Clamp to keep cells revisable.
const L_CLAMP: f64 = 6.0;

impl OccupancyGrid {
    /// Creates an unknown (all-zero log-odds) grid.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions.
    pub fn new(width: u32, height: u32) -> OccupancyGrid {
        assert!(width > 0 && height > 0, "grid must be non-empty");
        OccupancyGrid {
            width,
            height,
            log_odds: vec![0.0; (width * height) as usize],
        }
    }

    /// Grid width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Grid height.
    pub fn height(&self) -> u32 {
        self.height
    }

    fn idx(&self, x: u32, y: u32) -> usize {
        (y * self.width + x) as usize
    }

    /// Occupancy probability of a cell.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn probability(&self, x: u32, y: u32) -> f64 {
        assert!(x < self.width && y < self.height, "cell out of bounds");
        let l = self.log_odds[self.idx(x, y)];
        1.0 - 1.0 / (1.0 + l.exp())
    }

    /// Whether the map believes a cell is occupied (p > 0.65).
    pub fn is_occupied(&self, x: u32, y: u32) -> bool {
        self.probability(x, y) > 0.65
    }

    /// Whether the map has information about a cell at all.
    pub fn is_known(&self, x: u32, y: u32) -> bool {
        self.log_odds[self.idx(x, y)].abs() > 0.2
    }

    fn update(&mut self, x: u32, y: u32, delta: f64) {
        let i = self.idx(x, y);
        self.log_odds[i] = (self.log_odds[i] + delta).clamp(-L_CLAMP, L_CLAMP);
    }

    /// Integrates one range scan taken from `pose`.
    pub fn integrate(&mut self, pose: (u32, u32), scan: &Scan) {
        for beam in &scan.beams {
            let cells = bresenham(pose, beam.endpoint);
            // All cells before the endpoint are free.
            for &(x, y) in &cells[..cells.len().saturating_sub(1)] {
                if x < self.width && y < self.height {
                    self.update(x, y, L_FREE);
                }
            }
            if let Some(&(x, y)) = cells.last() {
                if x < self.width && y < self.height {
                    // Endpoint: obstacle if the beam hit, otherwise it was
                    // observed free (max-range or clipped beam).
                    self.update(x, y, if beam.hit { L_OCC } else { L_FREE });
                }
            }
        }
    }

    /// Fraction of cells the map has classified (known cells / total).
    pub fn coverage(&self) -> f64 {
        let known = self.log_odds.iter().filter(|l| l.abs() > 0.2).count();
        known as f64 / self.log_odds.len() as f64
    }
}

/// One range-sensor beam: the observed endpoint and whether it hit an
/// obstacle (vs reaching max range in free space).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Beam {
    /// Cell where the beam terminated.
    pub endpoint: (u32, u32),
    /// `true` if it terminated on an obstacle.
    pub hit: bool,
}

/// A set of beams from one sensing position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scan {
    /// The beams.
    pub beams: Vec<Beam>,
}

/// A ground-truth world for simulating the range sensor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct World {
    width: u32,
    height: u32,
    obstacles: Vec<bool>,
}

impl World {
    /// Creates an empty world.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions.
    pub fn new(width: u32, height: u32) -> World {
        assert!(width > 0 && height > 0);
        World {
            width,
            height,
            obstacles: vec![false; (width * height) as usize],
        }
    }

    /// Places an obstacle.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn add_obstacle(&mut self, x: u32, y: u32) {
        assert!(x < self.width && y < self.height);
        self.obstacles[(y * self.width + x) as usize] = true;
    }

    /// Whether a cell holds an obstacle.
    pub fn occupied(&self, x: u32, y: u32) -> bool {
        x < self.width && y < self.height && self.obstacles[(y * self.width + x) as usize]
    }

    /// Simulates an 8-direction range scan from `pose` with `max_range`.
    pub fn scan_from(&self, pose: (u32, u32), max_range: u32) -> Scan {
        const DIRS: [(i64, i64); 8] = [
            (1, 0),
            (-1, 0),
            (0, 1),
            (0, -1),
            (1, 1),
            (1, -1),
            (-1, 1),
            (-1, -1),
        ];
        let beams = DIRS
            .iter()
            .map(|&(dx, dy)| {
                let mut x = pose.0 as i64;
                let mut y = pose.1 as i64;
                for _ in 0..max_range {
                    x += dx;
                    y += dy;
                    if x < 0 || y < 0 || x >= self.width as i64 || y >= self.height as i64 {
                        // Clip to the last in-bounds cell, observed free.
                        return Beam {
                            endpoint: ((x - dx) as u32, (y - dy) as u32),
                            hit: false,
                        };
                    }
                    if self.occupied(x as u32, y as u32) {
                        return Beam {
                            endpoint: (x as u32, y as u32),
                            hit: true,
                        };
                    }
                }
                Beam {
                    endpoint: (x as u32, y as u32),
                    hit: false,
                }
            })
            .collect();
        Scan { beams }
    }
}

/// Integer line rasterization from `a` to `b`, inclusive.
fn bresenham(a: (u32, u32), b: (u32, u32)) -> Vec<(u32, u32)> {
    let (mut x0, mut y0) = (a.0 as i64, a.1 as i64);
    let (x1, y1) = (b.0 as i64, b.1 as i64);
    let dx = (x1 - x0).abs();
    let dy = -(y1 - y0).abs();
    let sx = if x0 < x1 { 1 } else { -1 };
    let sy = if y0 < y1 { 1 } else { -1 };
    let mut err = dx + dy;
    let mut out = Vec::new();
    loop {
        out.push((x0 as u32, y0 as u32));
        if x0 == x1 && y0 == y1 {
            break;
        }
        let e2 = 2 * err;
        if e2 >= dy {
            err += dy;
            x0 += sx;
        }
        if e2 <= dx {
            err += dx;
            y0 += sy;
        }
    }
    out
}

/// Scan-matching localization: finds the offset in `[-search, search]²`
/// that best aligns `scan` (taken at unknown true pose) with the map,
/// starting from odometry estimate `guess`. Returns the corrected pose.
///
/// # Examples
///
/// ```rust
/// use hivemind_apps::kernels::slam::{localize, OccupancyGrid, World};
///
/// let mut world = World::new(30, 30);
/// for i in 0..30 {
///     world.add_obstacle(i, 0);
///     world.add_obstacle(i, 29);
///     world.add_obstacle(0, i);
///     world.add_obstacle(29, i);
/// }
/// for i in 5..25 {
///     world.add_obstacle(i, 20);
/// }
/// // Build a map from known poses...
/// let mut map = OccupancyGrid::new(30, 30);
/// for &p in &[(10u32, 10u32), (20, 10), (10, 25), (20, 25), (5, 15)] {
///     map.integrate(p, &world.scan_from(p, 30));
/// }
/// // ...then localize a drifted odometry estimate. The robot measures
/// // beam endpoints *relative to itself*, so endpoints arrive expressed
/// // in the (wrong) odometry frame:
/// use hivemind_apps::kernels::slam::odometry_frame;
/// let true_pose = (15, 10);
/// let guess = (17, 11);
/// let scan = odometry_frame(&world.scan_from(true_pose, 30), true_pose, guess);
/// let corrected = localize(&map, guess, &scan, 3);
/// assert_eq!(corrected, true_pose);
/// ```
/// Re-expresses a scan taken at `true_pose` in the frame of an odometry
/// estimate `guess` — i.e. what the robot *thinks* the endpoints'
/// absolute coordinates are. Endpoints that would fall outside the map
/// keep their clipped coordinates saturated at zero.
pub fn odometry_frame(scan: &Scan, true_pose: (u32, u32), guess: (u32, u32)) -> Scan {
    let dx = guess.0 as i64 - true_pose.0 as i64;
    let dy = guess.1 as i64 - true_pose.1 as i64;
    Scan {
        beams: scan
            .beams
            .iter()
            .map(|b| Beam {
                endpoint: (
                    (b.endpoint.0 as i64 + dx).max(0) as u32,
                    (b.endpoint.1 as i64 + dy).max(0) as u32,
                ),
                hit: b.hit,
            })
            .collect(),
    }
}

/// Scan-matching localization over a small search window (see the module
/// docs and the example above).
pub fn localize(map: &OccupancyGrid, guess: (u32, u32), scan: &Scan, search: i64) -> (u32, u32) {
    let mut best = guess;
    let mut best_score = f64::NEG_INFINITY;
    for dx in -search..=search {
        for dy in -search..=search {
            let cx = guess.0 as i64 + dx;
            let cy = guess.1 as i64 + dy;
            if cx < 0 || cy < 0 || cx >= map.width() as i64 || cy >= map.height() as i64 {
                continue;
            }
            let candidate = (cx as u32, cy as u32);
            let mut score = 0.0;
            for beam in &scan.beams {
                // Translate the beam endpoint by the candidate offset.
                let ex = beam.endpoint.0 as i64 + (candidate.0 as i64 - guess.0 as i64);
                let ey = beam.endpoint.1 as i64 + (candidate.1 as i64 - guess.1 as i64);
                if ex < 0 || ey < 0 || ex >= map.width() as i64 || ey >= map.height() as i64 {
                    continue;
                }
                let p = map.probability(ex as u32, ey as u32);
                score += if beam.hit { p } else { 1.0 - p };
            }
            // Prefer smaller corrections on ties (stable & physical).
            let tie_break = -0.001 * ((dx * dx + dy * dy) as f64);
            if score + tie_break > best_score {
                best_score = score + tie_break;
                best = candidate;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn walled_world() -> World {
        let mut w = World::new(40, 40);
        for i in 0..40 {
            w.add_obstacle(i, 0);
            w.add_obstacle(i, 39);
            w.add_obstacle(0, i);
            w.add_obstacle(39, i);
        }
        for i in 10..30 {
            w.add_obstacle(i, 20);
        }
        w
    }

    #[test]
    fn mapping_marks_walls_occupied_and_interior_free() {
        let world = walled_world();
        let mut map = OccupancyGrid::new(40, 40);
        for &pose in &[(5u32, 5u32), (20, 10), (35, 5), (20, 5)] {
            for _ in 0..3 {
                map.integrate(pose, &world.scan_from(pose, 40));
            }
        }
        // The interior wall under the scans must be seen.
        assert!(map.is_occupied(20, 20) || map.is_occupied(19, 20));
        // Free space along the scan paths is known-free.
        assert!(map.is_known(20, 12));
        assert!(!map.is_occupied(20, 12));
    }

    #[test]
    fn coverage_grows_with_scans() {
        let world = walled_world();
        let mut map = OccupancyGrid::new(40, 40);
        map.integrate((5, 5), &world.scan_from((5, 5), 40));
        let one = map.coverage();
        for &pose in &[(35u32, 35u32), (5, 35), (35, 5), (20, 10)] {
            map.integrate(pose, &world.scan_from(pose, 40));
        }
        assert!(map.coverage() > one * 2.0);
    }

    #[test]
    fn localization_corrects_odometry_drift() {
        let world = walled_world();
        let mut map = OccupancyGrid::new(40, 40);
        // Build a decent map first.
        for &pose in &[
            (5u32, 5u32),
            (10, 10),
            (30, 10),
            (10, 30),
            (30, 30),
            (20, 10),
        ] {
            for _ in 0..2 {
                map.integrate(pose, &world.scan_from(pose, 40));
            }
        }
        let mut recovered = 0;
        for &true_pose in &[(15u32, 10u32), (25, 10), (15, 30), (25, 30)] {
            let drifted = (true_pose.0 + 2, true_pose.1 + 1);
            let scan = odometry_frame(&world.scan_from(true_pose, 40), true_pose, drifted);
            if localize(&map, drifted, &scan, 3) == true_pose {
                recovered += 1;
            }
        }
        assert!(recovered >= 3, "recovered {recovered}/4 poses");
    }

    #[test]
    fn bresenham_endpoints_and_connectivity() {
        let line = bresenham((0, 0), (5, 3));
        assert_eq!(*line.first().unwrap(), (0, 0));
        assert_eq!(*line.last().unwrap(), (5, 3));
        for w in line.windows(2) {
            let dx = (w[1].0 as i64 - w[0].0 as i64).abs();
            let dy = (w[1].1 as i64 - w[0].1 as i64).abs();
            assert!(dx <= 1 && dy <= 1 && dx + dy >= 1);
        }
    }

    #[test]
    fn log_odds_clamped() {
        let mut map = OccupancyGrid::new(3, 3);
        let world = {
            let mut w = World::new(3, 3);
            w.add_obstacle(2, 1);
            w
        };
        for _ in 0..100 {
            map.integrate((0, 1), &world.scan_from((0, 1), 3));
        }
        let p = map.probability(2, 1);
        assert!(p > 0.95 && p <= 1.0);
        // Still revisable: a long streak of free observations flips it.
        let empty = World::new(3, 3);
        for _ in 0..100 {
            map.integrate((0, 1), &empty.scan_from((0, 1), 3));
        }
        assert!(!map.is_occupied(2, 1));
    }

    #[test]
    fn unknown_cells_report_half_probability() {
        let map = OccupancyGrid::new(4, 4);
        assert!((map.probability(2, 2) - 0.5).abs() < 1e-12);
        assert!(!map.is_known(2, 2));
    }
}

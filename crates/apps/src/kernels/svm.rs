//! Linear SVM trained with stochastic sub-gradient descent.
//!
//! S3 detects other drones "using an SVM classifier trained for the orange
//! tag all our drones have" (Sec. 2.1); the on-board obstacle-avoidance
//! engine uses the same classifier family "trained on trees, people,
//! drones, and buildings". This is a standard Pegasos-style hinge-loss
//! SGD on dense feature vectors.

use rand::Rng;

/// A binary linear classifier `sign(w·x + b)`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearSvm {
    w: Vec<f64>,
    b: f64,
    lambda: f64,
    steps: u64,
}

impl LinearSvm {
    /// Creates an untrained SVM over `dims`-dimensional features with
    /// regularization strength `lambda`.
    ///
    /// # Panics
    ///
    /// Panics if `dims == 0` or `lambda <= 0`.
    pub fn new(dims: usize, lambda: f64) -> LinearSvm {
        assert!(dims > 0, "need at least one feature");
        assert!(lambda > 0.0, "lambda must be positive");
        LinearSvm {
            w: vec![0.0; dims],
            b: 0.0,
            lambda,
            steps: 0,
        }
    }

    /// Number of SGD steps taken.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The raw decision value `w·x + b`.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimensionality.
    pub fn decision(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.w.len(), "feature dimensionality mismatch");
        self.w.iter().zip(x).map(|(w, x)| w * x).sum::<f64>() + self.b
    }

    /// Predicts the class of `x` (`true` = positive).
    pub fn predict(&self, x: &[f64]) -> bool {
        self.decision(x) >= 0.0
    }

    /// One Pegasos SGD step on `(x, label)`.
    pub fn train_step(&mut self, x: &[f64], label: bool) {
        assert_eq!(x.len(), self.w.len(), "feature dimensionality mismatch");
        self.steps += 1;
        let y = if label { 1.0 } else { -1.0 };
        // Pegasos step size with a warm-up offset: the textbook 1/(λt)
        // takes enormous first steps (η = 100 at t = 1 for λ = 0.01),
        // which leaves a large residual bias on small datasets.
        let eta = 1.0 / (self.lambda * (self.steps as f64 + 100.0));
        let margin = y * self.decision(x);
        for w in &mut self.w {
            *w *= 1.0 - eta * self.lambda;
        }
        if margin < 1.0 {
            for (w, &xi) in self.w.iter_mut().zip(x) {
                *w += eta * y * xi;
            }
            self.b += eta * y;
        }
    }

    /// Trains over a dataset for `epochs` passes.
    pub fn fit(&mut self, data: &[(Vec<f64>, bool)], epochs: u32) {
        for _ in 0..epochs {
            for (x, y) in data {
                self.train_step(x, *y);
            }
        }
    }

    /// Fraction of `data` classified correctly.
    pub fn accuracy(&self, data: &[(Vec<f64>, bool)]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = data.iter().filter(|(x, y)| self.predict(x) == *y).count();
        correct as f64 / data.len() as f64
    }
}

/// Generates a synthetic "orange tag" dataset: positives cluster around
/// `+mu` in every dimension, negatives around `-mu`, with unit Gaussian
/// noise. `mu` controls separability.
pub fn tag_dataset<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    dims: usize,
    mu: f64,
) -> Vec<(Vec<f64>, bool)> {
    (0..n)
        .map(|i| {
            let label = i % 2 == 0;
            let center = if label { mu } else { -mu };
            let x = (0..dims).map(|_| center + gaussian(rng)).collect();
            (x, label)
        })
        .collect()
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hivemind_sim::rng::RngForge;

    #[test]
    fn learns_separable_data() {
        let mut rng = RngForge::new(1).stream("svm");
        let train = tag_dataset(&mut rng, 400, 8, 1.5);
        let test = tag_dataset(&mut rng, 200, 8, 1.5);
        let mut svm = LinearSvm::new(8, 0.01);
        svm.fit(&train, 10);
        let acc = svm.accuracy(&test);
        assert!(acc > 0.93, "accuracy {acc}");
    }

    #[test]
    fn hard_data_learns_worse_than_easy_data() {
        let mut rng = RngForge::new(2).stream("svm");
        let easy_train = tag_dataset(&mut rng, 300, 4, 2.0);
        let easy_test = tag_dataset(&mut rng, 300, 4, 2.0);
        let hard_train = tag_dataset(&mut rng, 300, 4, 0.3);
        let hard_test = tag_dataset(&mut rng, 300, 4, 0.3);
        let mut easy = LinearSvm::new(4, 0.01);
        easy.fit(&easy_train, 5);
        let mut hard = LinearSvm::new(4, 0.01);
        hard.fit(&hard_train, 5);
        assert!(easy.accuracy(&easy_test) > hard.accuracy(&hard_test));
    }

    #[test]
    fn untrained_svm_is_chance() {
        let mut rng = RngForge::new(3).stream("svm");
        let test = tag_dataset(&mut rng, 100, 4, 2.0);
        let svm = LinearSvm::new(4, 0.01);
        // w = 0, b = 0 → predicts positive everywhere → 50% on balanced data.
        let acc = svm.accuracy(&test);
        assert!((acc - 0.5).abs() < 0.05, "accuracy {acc}");
    }

    #[test]
    fn more_training_does_not_hurt() {
        let mut rng = RngForge::new(4).stream("svm");
        let train = tag_dataset(&mut rng, 500, 6, 1.0);
        let test = tag_dataset(&mut rng, 500, 6, 1.0);
        let mut few = LinearSvm::new(6, 0.01);
        few.fit(&train[..20], 1);
        let mut many = LinearSvm::new(6, 0.01);
        many.fit(&train, 5);
        assert!(many.accuracy(&test) >= few.accuracy(&test) - 0.02);
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn dimension_mismatch_panics() {
        let svm = LinearSvm::new(4, 0.01);
        let _ = svm.decision(&[1.0, 2.0]);
    }

    #[test]
    fn empty_accuracy_is_zero() {
        let svm = LinearSvm::new(4, 0.01);
        assert_eq!(svm.accuracy(&[]), 0.0);
    }
}

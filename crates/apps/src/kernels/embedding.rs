//! FaceNet-style identity embeddings.
//!
//! FaceNet "uses a CNN to learn a mapping between faces and a compact
//! Euclidean space, where distances correspond to an indication of face
//! similarity" (Sec. 2.1). We model the *output* of such a network: every
//! identity owns a stable point on the unit sphere in `D` dimensions, and
//! each observation of that identity is the point plus bounded noise.
//! Matching and deduplication then work exactly as with the real network:
//! threshold on Euclidean distance.

use rand::Rng;

/// Dimensionality of the embedding space (FaceNet uses 128).
pub const EMBEDDING_DIMS: usize = 128;

/// An embedding vector.
pub type Embedding = Vec<f64>;

/// Euclidean distance between two embeddings.
///
/// # Panics
///
/// Panics if dimensions differ.
pub fn distance(a: &Embedding, b: &Embedding) -> f64 {
    assert_eq!(a.len(), b.len(), "embedding dimensionality mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).powi(2))
        .sum::<f64>()
        .sqrt()
}

/// Generates identity `id`'s canonical embedding: a deterministic unit
/// vector derived from the id (so every device in the swarm agrees on it).
pub fn identity_anchor(id: u32) -> Embedding {
    // Deterministic pseudo-random direction from a per-identity stream.
    let forge = hivemind_sim::rng::RngForge::new(0x00FACE);
    let mut rng = forge.indexed_stream("identity", id as u64);
    let mut v: Vec<f64> = (0..EMBEDDING_DIMS).map(|_| gaussian(&mut rng)).collect();
    normalize(&mut v);
    v
}

/// Observes identity `id` with observation noise `sigma` per dimension.
pub fn observe<R: Rng + ?Sized>(id: u32, sigma: f64, rng: &mut R) -> Embedding {
    let mut v = identity_anchor(id);
    for x in &mut v {
        *x += sigma * gaussian(rng);
    }
    normalize(&mut v);
    v
}

fn normalize(v: &mut [f64]) {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

/// A gallery of known identities supporting nearest-anchor matching.
///
/// # Examples
///
/// ```rust
/// use hivemind_apps::kernels::embedding::{Gallery, observe};
/// use hivemind_sim::rng::RngForge;
///
/// let gallery = Gallery::with_identities(0..10);
/// let mut rng = RngForge::new(1).stream("face");
/// let sample = observe(4, 0.02, &mut rng);
/// assert_eq!(gallery.identify(&sample, 0.8), Some(4));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Gallery {
    ids: Vec<u32>,
    anchors: Vec<Embedding>,
}

impl Gallery {
    /// Builds a gallery for the given identity ids.
    pub fn with_identities<I: IntoIterator<Item = u32>>(ids: I) -> Gallery {
        let ids: Vec<u32> = ids.into_iter().collect();
        let anchors = ids.iter().map(|&id| identity_anchor(id)).collect();
        Gallery { ids, anchors }
    }

    /// Number of enrolled identities.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the gallery is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Identifies the closest enrolled identity within `threshold`, or
    /// `None` for an unknown face.
    pub fn identify(&self, sample: &Embedding, threshold: f64) -> Option<u32> {
        self.anchors
            .iter()
            .zip(&self.ids)
            .map(|(anchor, &id)| (distance(anchor, sample), id))
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .filter(|&(d, _)| d <= threshold)
            .map(|(_, id)| id)
    }
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hivemind_sim::rng::RngForge;

    #[test]
    fn anchors_are_unit_and_stable() {
        let a1 = identity_anchor(7);
        let a2 = identity_anchor(7);
        assert_eq!(a1, a2);
        let norm: f64 = a1.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn different_identities_are_far_apart() {
        // Random unit vectors in 128-d are nearly orthogonal: distance ≈ √2.
        for i in 0..10u32 {
            for j in (i + 1)..10 {
                let d = distance(&identity_anchor(i), &identity_anchor(j));
                assert!(d > 1.0, "identities {i},{j} too close: {d}");
            }
        }
    }

    #[test]
    fn same_identity_observations_are_close() {
        let mut rng = RngForge::new(2).stream("emb");
        for _ in 0..20 {
            let a = observe(3, 0.03, &mut rng);
            let b = observe(3, 0.03, &mut rng);
            assert!(distance(&a, &b) < 0.8);
        }
    }

    #[test]
    fn gallery_identifies_with_noise() {
        let gallery = Gallery::with_identities(0..25);
        let mut rng = RngForge::new(3).stream("emb");
        let mut correct = 0;
        for id in 0..25 {
            let sample = observe(id, 0.03, &mut rng);
            if gallery.identify(&sample, 0.8) == Some(id) {
                correct += 1;
            }
        }
        assert_eq!(correct, 25, "clean observations identify perfectly");
    }

    #[test]
    fn unknown_face_rejected_by_threshold() {
        let gallery = Gallery::with_identities(0..5);
        let mut rng = RngForge::new(4).stream("emb");
        // Identity 99 is not enrolled; with a tight threshold it's unknown.
        let sample = observe(99, 0.03, &mut rng);
        assert_eq!(gallery.identify(&sample, 0.8), None);
    }

    #[test]
    fn heavy_noise_breaks_identification() {
        let gallery = Gallery::with_identities(0..5);
        let mut rng = RngForge::new(5).stream("emb");
        let mut correct = 0;
        for id in 0..5 {
            for _ in 0..10 {
                let sample = observe(id, 1.5, &mut rng);
                if gallery.identify(&sample, 0.8) == Some(id) {
                    correct += 1;
                }
            }
        }
        assert!(
            correct < 40,
            "extreme noise must cause misses, got {correct}/50"
        );
    }

    #[test]
    fn empty_gallery() {
        let gallery = Gallery::with_identities(std::iter::empty());
        assert!(gallery.is_empty());
        assert_eq!(gallery.identify(&identity_anchor(0), 2.0), None);
    }
}

//! Continuous learning (Fig. 15): how retraining policy shapes accuracy.
//!
//! "If enabled, instead of only using one device's decisions to retrain
//! it, HiveMind leverages the entire swarm's decisions to retrain all
//! devices jointly, which significantly accelerates their decision
//! quality" (Sec. 4.6). We reproduce this with a *real* online learner —
//! logistic regression on synthetic detection features — so the accuracy
//! curves emerge from actual training dynamics rather than a formula:
//!
//! * [`RetrainMode::None`] — the model ships with a small pre-training set
//!   and never improves.
//! * [`RetrainMode::PerDevice`] — each device retrains on its own labeled
//!   observations only.
//! * [`RetrainMode::SwarmWide`] — the centralized backend pools every
//!   device's observations and retrains a shared model, so each device's
//!   model sees `n×` the data per unit time.

use rand::rngs::SmallRng;
use rand::Rng;

use hivemind_sim::rng::RngForge;

/// Retraining policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RetrainMode {
    /// Never retrain after deployment.
    None,
    /// Retrain each device on its own decisions.
    PerDevice,
    /// Retrain all devices jointly on the swarm's pooled decisions.
    SwarmWide,
}

impl RetrainMode {
    /// The three modes in the paper's Fig. 15 order.
    pub const ALL: [RetrainMode; 3] = [
        RetrainMode::None,
        RetrainMode::PerDevice,
        RetrainMode::SwarmWide,
    ];

    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            RetrainMode::None => "None",
            RetrainMode::PerDevice => "Self",
            RetrainMode::SwarmWide => "Swarm",
        }
    }
}

/// Online logistic-regression detector.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineDetector {
    w: Vec<f64>,
    b: f64,
    lr: f64,
    trained: u64,
}

/// Number of detection features.
pub const FEATURES: usize = 12;

impl OnlineDetector {
    /// A fresh detector with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f64) -> OnlineDetector {
        assert!(lr > 0.0, "learning rate must be positive");
        OnlineDetector {
            w: vec![0.0; FEATURES],
            b: 0.0,
            lr,
            trained: 0,
        }
    }

    /// Samples trained on so far.
    pub fn trained(&self) -> u64 {
        self.trained
    }

    /// Detection probability for a feature vector.
    ///
    /// # Panics
    ///
    /// Panics on dimensionality mismatch.
    pub fn probability(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), FEATURES, "feature dimensionality mismatch");
        let z: f64 = self.w.iter().zip(x).map(|(w, x)| w * x).sum::<f64>() + self.b;
        1.0 / (1.0 + (-z).exp())
    }

    /// Binary decision at the 0.5 threshold.
    pub fn detect(&self, x: &[f64]) -> bool {
        self.probability(x) >= 0.5
    }

    /// One SGD step on a labeled sample.
    pub fn train(&mut self, x: &[f64], label: bool) {
        let p = self.probability(x);
        let err = (if label { 1.0 } else { 0.0 }) - p;
        for (w, &xi) in self.w.iter_mut().zip(x) {
            *w += self.lr * err * xi;
        }
        self.b += self.lr * err;
        self.trained += 1;
    }
}

/// Generates detection feature vectors: positives (object present) and
/// negatives (background) are overlapping Gaussian clouds, so even a
/// perfect linear model keeps a small irreducible error — matching the
/// residual false rates in Fig. 15.
#[derive(Debug, Clone)]
pub struct FeatureGen {
    rng: SmallRng,
    separation: f64,
}

impl FeatureGen {
    /// Creates a generator with class separation `separation` (≈1.0 is a
    /// realistically hard vision problem).
    pub fn new(forge: &RngForge, separation: f64) -> FeatureGen {
        FeatureGen {
            rng: forge.stream("feature-gen"),
            separation,
        }
    }

    /// Draws a labeled sample `(features, object_present)`.
    pub fn sample(&mut self) -> (Vec<f64>, bool) {
        let label = self.rng.gen::<bool>();
        let center = if label {
            self.separation / 2.0
        } else {
            -self.separation / 2.0
        };
        let x = (0..FEATURES)
            .map(|_| center + gaussian(&mut self.rng))
            .collect();
        (x, label)
    }
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Accuracy outcome of a detection campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionQuality {
    /// Correct decisions, percent.
    pub correct_pct: f64,
    /// Missed objects, percent.
    pub false_negative_pct: f64,
    /// Phantom detections, percent.
    pub false_positive_pct: f64,
}

/// Simulates a detection campaign under a retraining mode.
///
/// Every device makes `decisions_per_device` decisions; under
/// `PerDevice` each decision also becomes a training sample for that
/// device's own model, under `SwarmWide` it becomes a training sample for
/// the shared model (so the model improves `devices`× faster), and under
/// `None` only the initial `pretraining` samples are ever used.
pub fn run_campaign(
    mode: RetrainMode,
    devices: u32,
    decisions_per_device: u32,
    pretraining: u32,
    seed: u64,
) -> DetectionQuality {
    assert!(devices > 0, "need at least one device");
    let forge = RngForge::new(seed);
    // Separation 0.55 makes the detection problem genuinely hard: the
    // Bayes-optimal accuracy is ≈ 83 %, so retraining volume matters.
    let mut gen = FeatureGen::new(&forge, 0.55);
    let mut shared = OnlineDetector::new(0.05);
    let mut per_device: Vec<OnlineDetector> =
        (0..devices).map(|_| OnlineDetector::new(0.05)).collect();

    // Factory pre-training, identical for every model.
    let pretrain_set: Vec<(Vec<f64>, bool)> = (0..pretraining).map(|_| gen.sample()).collect();
    for (x, y) in &pretrain_set {
        shared.train(x, *y);
        for d in &mut per_device {
            d.train(x, *y);
        }
    }

    let (mut correct, mut fn_, mut fp) = (0u64, 0u64, 0u64);
    // Round-robin decisions interleave devices the way a mission does.
    for _round in 0..decisions_per_device {
        #[allow(clippy::needless_range_loop)] // dev doubles as data index below
        for dev in 0..devices as usize {
            let (x, truth) = gen.sample();
            let model: &OnlineDetector = match mode {
                RetrainMode::SwarmWide => &shared,
                _ => &per_device[dev],
            };
            let decided = model.detect(&x);
            match (decided, truth) {
                (true, true) | (false, false) => correct += 1,
                (false, true) => fn_ += 1,
                (true, false) => fp += 1,
            }
            match mode {
                RetrainMode::None => {}
                RetrainMode::PerDevice => per_device[dev].train(&x, truth),
                RetrainMode::SwarmWide => shared.train(&x, truth),
            }
        }
    }
    let total = (correct + fn_ + fp) as f64;
    DetectionQuality {
        correct_pct: 100.0 * correct as f64 / total,
        false_negative_pct: 100.0 * fn_ as f64 / total,
        false_positive_pct: 100.0 * fp as f64 / total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detector_learns_the_boundary() {
        let forge = RngForge::new(1);
        let mut gen = FeatureGen::new(&forge, 1.5);
        let mut d = OnlineDetector::new(0.1);
        for _ in 0..2000 {
            let (x, y) = gen.sample();
            d.train(&x, y);
        }
        let mut correct = 0;
        for _ in 0..500 {
            let (x, y) = gen.sample();
            if d.detect(&x) == y {
                correct += 1;
            }
        }
        assert!(correct > 450, "correct {correct}/500");
    }

    #[test]
    fn untrained_detector_is_chance() {
        let forge = RngForge::new(2);
        let mut gen = FeatureGen::new(&forge, 1.5);
        let d = OnlineDetector::new(0.1);
        let mut correct = 0;
        for _ in 0..500 {
            let (x, y) = gen.sample();
            if d.detect(&x) == y {
                correct += 1;
            }
        }
        assert!((200..300).contains(&correct), "correct {correct}/500");
    }

    #[test]
    fn fig15_ordering_none_self_swarm() {
        let none = run_campaign(RetrainMode::None, 16, 120, 6, 7);
        let per = run_campaign(RetrainMode::PerDevice, 16, 120, 6, 7);
        let swarm = run_campaign(RetrainMode::SwarmWide, 16, 120, 6, 7);
        assert!(
            per.correct_pct > none.correct_pct + 2.0,
            "self-retraining must beat frozen: {per:?} vs {none:?}"
        );
        assert!(
            swarm.correct_pct > per.correct_pct + 1.0,
            "swarm retraining must beat per-device: {swarm:?} vs {per:?}"
        );
        assert!(swarm.correct_pct > 78.0, "swarm {swarm:?}");
    }

    #[test]
    fn percentages_sum_to_100() {
        for mode in RetrainMode::ALL {
            let q = run_campaign(mode, 8, 40, 20, 3);
            let sum = q.correct_pct + q.false_negative_pct + q.false_positive_pct;
            assert!((sum - 100.0).abs() < 1e-9, "{mode:?}: {sum}");
        }
    }

    #[test]
    fn swarm_mode_trains_one_model_with_all_data() {
        // Indirect check: with a single device, Self and Swarm coincide.
        let per = run_campaign(RetrainMode::PerDevice, 1, 100, 10, 11);
        let swarm = run_campaign(RetrainMode::SwarmWide, 1, 100, 10, 11);
        assert!((per.correct_pct - swarm.correct_pct).abs() < 1e-9);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(RetrainMode::None.label(), "None");
        assert_eq!(RetrainMode::PerDevice.label(), "Self");
        assert_eq!(RetrainMode::SwarmWide.label(), "Swarm");
    }
}

//! The S1–S10 benchmark suite: identities and calibrated cost profiles.
//!
//! A *task* is the unit the paper measures — e.g. "recognize the faces in
//! a one-second frame batch" (Sec. 3.2). Each app's profile gives the
//! cloud-core service time for one task, the bytes shipped in and out, and
//! the knobs that shape the figures:
//!
//! * `edge_slowdown`: on-device execution cost multiplier. Heavy vision
//!   apps are ~an order of magnitude slower on the 1 GHz Cortex-A8;
//!   lightweight analytics (S3, S7) run comparably at cloud and edge —
//!   the paper's three exceptions in Fig. 4.
//! * `intra_parallelism`: how many serverless functions one task can fan
//!   out into (Fig. 5a's "serverless (intra-task)" bars; dramatic for S9
//!   text recognition and S10 SLAM).
//! * `edge_pinned`: obstacle avoidance (S4) always runs on-board "to
//!   avoid catastrophic failures due to long network delays" (Sec. 2.1).

use hivemind_faas::types::{AppId, AppProfile};
use hivemind_sim::dist::Dist;

/// One of the ten benchmark applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum App {
    /// S1 — face recognition (FaceNet).
    FaceRecognition,
    /// S2 — tree recognition (TensorFlow Model Zoo CNN).
    TreeRecognition,
    /// S3 — drone detection (SVM on the orange tags).
    DroneDetection,
    /// S4 — obstacle avoidance (ardrone-autonomy framework).
    ObstacleAvoidance,
    /// S5 — people deduplication (FaceNet embedding distances).
    PeopleDedup,
    /// S6 — maze traversal (Wall Follower).
    Maze,
    /// S7 — weather analytics from temperature/humidity sensors.
    WeatherAnalytics,
    /// S8 — soil analytics from images + humidity.
    SoilAnalytics,
    /// S9 — text recognition (image-to-text on signs).
    TextRecognition,
    /// S10 — simultaneous localization and mapping.
    Slam,
}

impl App {
    /// All ten apps in S1…S10 order.
    pub const ALL: [App; 10] = [
        App::FaceRecognition,
        App::TreeRecognition,
        App::DroneDetection,
        App::ObstacleAvoidance,
        App::PeopleDedup,
        App::Maze,
        App::WeatherAnalytics,
        App::SoilAnalytics,
        App::TextRecognition,
        App::Slam,
    ];

    /// The paper's short label ("S1" … "S10").
    pub fn label(self) -> &'static str {
        match self {
            App::FaceRecognition => "S1",
            App::TreeRecognition => "S2",
            App::DroneDetection => "S3",
            App::ObstacleAvoidance => "S4",
            App::PeopleDedup => "S5",
            App::Maze => "S6",
            App::WeatherAnalytics => "S7",
            App::SoilAnalytics => "S8",
            App::TextRecognition => "S9",
            App::Slam => "S10",
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            App::FaceRecognition => "Face Recognition",
            App::TreeRecognition => "Tree Recognition",
            App::DroneDetection => "Drone Detection",
            App::ObstacleAvoidance => "Obstacle Avoidance",
            App::PeopleDedup => "People Deduplication",
            App::Maze => "Maze",
            App::WeatherAnalytics => "Weather Analytics",
            App::SoilAnalytics => "Soil Analytics",
            App::TextRecognition => "Text Recognition",
            App::Slam => "SLAM",
        }
    }

    /// The FaaS registry id (stable: S1 → 0 … S10 → 9).
    pub fn app_id(self) -> AppId {
        AppId(
            App::ALL
                .iter()
                .position(|&a| a == self)
                .expect("member of ALL") as u16,
        )
    }

    /// Recovers an app from its [`AppId`], if in range.
    pub fn from_app_id(id: AppId) -> Option<App> {
        App::ALL.get(id.0 as usize).copied()
    }

    /// Calibrated cloud-execution profile for one task.
    pub fn cloud_profile(self) -> AppProfile {
        // (median_exec_s, sigma, input_bytes, output_bytes, memory_mb)
        let (median, sigma, input, output, mem) = match self {
            App::FaceRecognition => (0.250, 0.35, 2_000_000, 10_000, 1024),
            App::TreeRecognition => (0.300, 0.35, 2_000_000, 8_000, 1024),
            App::DroneDetection => (0.040, 0.25, 500_000, 2_000, 256),
            App::ObstacleAvoidance => (0.030, 0.25, 500_000, 1_000, 256),
            App::PeopleDedup => (0.350, 0.40, 200_000, 5_000, 768),
            App::Maze => (0.450, 0.30, 100_000, 1_000, 128),
            App::WeatherAnalytics => (0.015, 0.25, 20_000, 1_000, 128),
            App::SoilAnalytics => (0.120, 0.30, 1_000_000, 2_000, 512),
            App::TextRecognition => (0.500, 0.40, 2_000_000, 5_000, 1024),
            App::Slam => (0.600, 0.40, 2_500_000, 50_000, 2048),
        };
        AppProfile {
            name: self.name(),
            exec: Dist::lognormal_median_sigma(median, sigma),
            input_bytes: input,
            output_bytes: output,
            memory_mb: mem,
        }
    }

    /// On-device execution cost multiplier relative to one cloud core.
    ///
    /// Compute-heavy vision models suffer the full Cortex-A8 penalty;
    /// S3 and S7 "behave comparably on the cloud and edge due to their
    /// modest resource needs" (Sec. 2.3).
    pub fn edge_slowdown(self) -> f64 {
        match self {
            App::DroneDetection => 1.6,
            App::WeatherAnalytics => 1.4,
            App::ObstacleAvoidance => 1.8,
            App::Maze => 3.0,
            App::SoilAnalytics => 6.0,
            App::FaceRecognition | App::TreeRecognition | App::PeopleDedup => 10.0,
            App::TextRecognition => 12.0,
            App::Slam => 14.0,
        }
    }

    /// Profile when the task executes on the edge device itself.
    pub fn edge_profile(self) -> AppProfile {
        let cloud = self.cloud_profile();
        AppProfile {
            exec: cloud.exec.scaled(self.edge_slowdown()),
            ..cloud
        }
    }

    /// How many functions one task fans into when intra-task parallelism
    /// is enabled (Fig. 5a).
    pub fn intra_parallelism(self) -> u32 {
        match self {
            App::TextRecognition | App::Slam => 8,
            App::FaceRecognition | App::TreeRecognition => 4,
            App::PeopleDedup | App::SoilAnalytics => 2,
            // "The maze traversal, and the weather and soil analytics do
            // not significantly benefit from fine-grained parallelism."
            App::Maze | App::WeatherAnalytics | App::DroneDetection | App::ObstacleAvoidance => 1,
        }
    }

    /// Whether this task must stay on the device (S4: flight safety).
    pub fn edge_pinned(self) -> bool {
        self == App::ObstacleAvoidance
    }

    /// Tasks generated per second per device at the default frame rate.
    pub fn tasks_per_sec(self) -> f64 {
        match self {
            // Drones move slowly in the maze, so fewer tasks per second.
            App::Maze => 0.3,
            _ => 1.0,
        }
    }

    /// Synchronization fan-in: deduplication gathers the whole swarm's
    /// recognition output at a barrier before it can run (`sync='all'` in
    /// Listing 3).
    pub fn requires_sync_barrier(self) -> bool {
        self == App::PeopleDedup
    }
}

impl std::fmt::Display for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.label(), self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable_and_roundtrip() {
        for (i, app) in App::ALL.iter().enumerate() {
            assert_eq!(app.app_id(), AppId(i as u16));
            assert_eq!(App::from_app_id(AppId(i as u16)), Some(*app));
        }
        assert_eq!(App::from_app_id(AppId(10)), None);
    }

    #[test]
    fn labels_follow_paper_order() {
        assert_eq!(App::FaceRecognition.label(), "S1");
        assert_eq!(App::Slam.label(), "S10");
        assert_eq!(App::ALL.len(), 10);
    }

    #[test]
    fn heavy_apps_are_heavier_than_light_apps() {
        let heavy = App::Slam.cloud_profile().exec.mean_secs();
        let light = App::WeatherAnalytics.cloud_profile().exec.mean_secs();
        assert!(heavy > 20.0 * light);
    }

    #[test]
    fn edge_comparable_apps_have_small_slowdown() {
        // The paper's exceptions: S3 and S7 comparable, S4 better at edge.
        assert!(App::DroneDetection.edge_slowdown() < 2.0);
        assert!(App::WeatherAnalytics.edge_slowdown() < 2.0);
        assert!(App::FaceRecognition.edge_slowdown() >= 10.0);
    }

    #[test]
    fn edge_profile_scales_exec_only() {
        let cloud = App::FaceRecognition.cloud_profile();
        let edge = App::FaceRecognition.edge_profile();
        assert!((edge.exec.mean_secs() - 10.0 * cloud.exec.mean_secs()).abs() < 1e-9);
        assert_eq!(edge.input_bytes, cloud.input_bytes);
    }

    #[test]
    fn obstacle_avoidance_is_pinned_to_edge() {
        assert!(App::ObstacleAvoidance.edge_pinned());
        assert_eq!(
            App::ALL.iter().filter(|a| a.edge_pinned()).count(),
            1,
            "only S4 is pinned"
        );
    }

    #[test]
    fn parallelism_matches_paper_observations() {
        assert_eq!(App::TextRecognition.intra_parallelism(), 8);
        assert_eq!(App::Slam.intra_parallelism(), 8);
        assert_eq!(App::Maze.intra_parallelism(), 1);
        assert_eq!(App::WeatherAnalytics.intra_parallelism(), 1);
    }

    #[test]
    fn dedup_requires_barrier() {
        assert!(App::PeopleDedup.requires_sync_barrier());
        assert!(!App::FaceRecognition.requires_sync_barrier());
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(App::Maze.to_string(), "S6 (Maze)");
    }
}

//! # hivemind-apps
//!
//! The paper's benchmark suite (Sec. 2.1): ten single-phase edge
//! applications **S1–S10** plus the multi-phase mission scenarios, with
//! two kinds of fidelity:
//!
//! * **Cost profiles** ([`suite`]) — calibrated service-time distributions
//!   and object sizes for each application, consumed by the serverless and
//!   edge execution models. These drive every latency/bandwidth/battery
//!   figure.
//! * **Real kernels** ([`kernels`]) — working implementations of the
//!   algorithmic hearts of the suite: a linear SVM (S3 drone detection —
//!   the paper trains an SVM on the drones' orange tags), an embedding
//!   matcher in FaceNet's style (S1/S5), union-find deduplication (S5),
//!   least-squares weather analytics (S7), soil-hydration estimation
//!   (S8), template-matching OCR (S9, and the cars' Treasure Hunt
//!   instruction panels), and an occupancy-grid SLAM core (S10). The maze
//!   traversal (S6) reuses `hivemind_swarm::maze`'s Wall Follower.
//! * **Online learning** ([`learning`]) — a real logistic-regression
//!   detector whose accuracy grows with training data, reproducing the
//!   continuous-learning comparison of Fig. 15 (no retraining vs
//!   per-device vs swarm-wide).
//! * **Scenarios** ([`scenario`]) — the task-graph skeletons of
//!   Scenario A (stationary items), Scenario B (moving people), and the
//!   robotic-car Treasure Hunt and Maze missions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernels;
pub mod learning;
pub mod scenario;
pub mod suite;

pub use scenario::Scenario;
pub use suite::App;

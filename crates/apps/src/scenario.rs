//! Multi-phase mission scenarios.
//!
//! The end-to-end evaluations run four missions (Secs. 2.1, 5.5):
//!
//! * **Scenario A — Stationary Items**: 16 drones locate 15 tennis balls.
//!   Phases: route calculation (A*), image collection, on-board obstacle
//!   avoidance, item recognition.
//! * **Scenario B — Moving People**: count 25 moving people. Phases add
//!   face recognition and a synchronization barrier feeding
//!   deduplication.
//! * **Treasure Hunt** (cars): follow OCR'd instruction panels to a goal.
//! * **Car Maze** (cars): traverse an unknown maze with the Wall
//!   Follower.
//!
//! A scenario is described as a linear sequence of [`PhaseSpec`]s over the
//! benchmark [`App`]s; the execution engine in `hivemind-core` interprets
//! these against the swarm and cluster models.

use hivemind_sim::time::SimDuration;

use crate::suite::App;

/// The four end-to-end missions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Scenario A: locate 15 stationary tennis balls (drones).
    StationaryItems,
    /// Scenario B: count 25 moving people with deduplication (drones).
    MovingPeople,
    /// Robotic cars: follow instruction panels to a target.
    TreasureHunt,
    /// Robotic cars: traverse an unknown maze.
    CarMaze,
}

/// Which fleet a scenario runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fleet {
    /// The 16-drone swarm.
    Drones,
    /// The 14-car swarm.
    Cars,
}

/// One computation phase of a mission.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpec {
    /// DSL-level task name.
    pub name: &'static str,
    /// The benchmark app whose cost profile this phase uses.
    pub app: App,
    /// Whether this phase consumes the raw sensor stream (one task per
    /// collected frame batch) as opposed to running once per mission.
    pub per_frame: bool,
    /// Whether all devices must finish the previous phase before this one
    /// starts (`Synchronize(task, 'all')` in the DSL).
    pub sync_barrier: bool,
}

impl Scenario {
    /// All four scenarios.
    pub const ALL: [Scenario; 4] = [
        Scenario::StationaryItems,
        Scenario::MovingPeople,
        Scenario::TreasureHunt,
        Scenario::CarMaze,
    ];

    /// The paper's label.
    pub fn label(self) -> &'static str {
        match self {
            Scenario::StationaryItems => "ScA",
            Scenario::MovingPeople => "ScB",
            Scenario::TreasureHunt => "TreasureHunt",
            Scenario::CarMaze => "CarMaze",
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::StationaryItems => "Scenario A: Static Item Recognition",
            Scenario::MovingPeople => "Scenario B: Moving People Recognition",
            Scenario::TreasureHunt => "Treasure Hunt",
            Scenario::CarMaze => "Maze",
        }
    }

    /// Which fleet flies/drives it.
    pub fn fleet(self) -> Fleet {
        match self {
            Scenario::StationaryItems | Scenario::MovingPeople => Fleet::Drones,
            Scenario::TreasureHunt | Scenario::CarMaze => Fleet::Cars,
        }
    }

    /// Default device count (16 drones / 14 cars).
    pub fn default_devices(self) -> u32 {
        match self.fleet() {
            Fleet::Drones => 16,
            Fleet::Cars => 14,
        }
    }

    /// The phase pipeline, in execution order.
    pub fn phases(self) -> Vec<PhaseSpec> {
        match self {
            Scenario::StationaryItems => vec![
                PhaseSpec {
                    name: "createRoute",
                    app: App::Maze, // planning-class compute cost (A*)
                    per_frame: false,
                    sync_barrier: false,
                },
                PhaseSpec {
                    name: "obstacleAvoidance",
                    app: App::ObstacleAvoidance,
                    per_frame: true,
                    sync_barrier: false,
                },
                PhaseSpec {
                    name: "itemRecognition",
                    app: App::TreeRecognition, // CNN detector cost class
                    per_frame: true,
                    sync_barrier: false,
                },
            ],
            Scenario::MovingPeople => vec![
                PhaseSpec {
                    name: "createRoute",
                    app: App::Maze,
                    per_frame: false,
                    sync_barrier: false,
                },
                PhaseSpec {
                    name: "obstacleAvoidance",
                    app: App::ObstacleAvoidance,
                    per_frame: true,
                    sync_barrier: false,
                },
                PhaseSpec {
                    name: "faceRecognition",
                    app: App::FaceRecognition,
                    per_frame: true,
                    sync_barrier: false,
                },
                PhaseSpec {
                    name: "deduplication",
                    app: App::PeopleDedup,
                    per_frame: false,
                    sync_barrier: true,
                },
            ],
            Scenario::TreasureHunt => vec![
                PhaseSpec {
                    name: "panelRecognition",
                    app: App::TextRecognition,
                    per_frame: true,
                    sync_barrier: false,
                },
                PhaseSpec {
                    name: "routeUpdate",
                    app: App::Maze,
                    per_frame: true,
                    sync_barrier: false,
                },
            ],
            Scenario::CarMaze => vec![
                PhaseSpec {
                    name: "wallFollowing",
                    app: App::Maze,
                    per_frame: true,
                    sync_barrier: false,
                },
                PhaseSpec {
                    name: "obstacleAvoidance",
                    app: App::ObstacleAvoidance,
                    per_frame: true,
                    sync_barrier: false,
                },
            ],
        }
    }

    /// Ground-truth targets in the world (15 balls / 25 people).
    pub fn target_count(self) -> u32 {
        match self {
            Scenario::StationaryItems => 15,
            Scenario::MovingPeople => 25,
            Scenario::TreasureHunt => 1,
            Scenario::CarMaze => 1,
        }
    }

    /// A generous wall-clock bound used by harnesses to declare a mission
    /// failed (battery death usually triggers first).
    pub fn mission_timeout(self) -> SimDuration {
        SimDuration::from_secs(1800)
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleets_and_sizes() {
        assert_eq!(Scenario::StationaryItems.fleet(), Fleet::Drones);
        assert_eq!(Scenario::StationaryItems.default_devices(), 16);
        assert_eq!(Scenario::TreasureHunt.fleet(), Fleet::Cars);
        assert_eq!(Scenario::TreasureHunt.default_devices(), 14);
    }

    #[test]
    fn scenario_b_ends_with_dedup_behind_barrier() {
        let phases = Scenario::MovingPeople.phases();
        let last = phases.last().unwrap();
        assert_eq!(last.app, App::PeopleDedup);
        assert!(last.sync_barrier);
        assert!(!last.per_frame, "dedup runs once over pooled output");
    }

    #[test]
    fn obstacle_avoidance_phase_uses_pinned_app() {
        for s in [Scenario::StationaryItems, Scenario::MovingPeople] {
            let has_oa = s
                .phases()
                .iter()
                .any(|p| p.app == App::ObstacleAvoidance && p.app.edge_pinned());
            assert!(has_oa, "{s:?}");
        }
    }

    #[test]
    fn target_counts_match_paper() {
        assert_eq!(Scenario::StationaryItems.target_count(), 15);
        assert_eq!(Scenario::MovingPeople.target_count(), 25);
    }

    #[test]
    fn every_scenario_has_phases_and_labels() {
        for s in Scenario::ALL {
            assert!(!s.phases().is_empty());
            assert!(!s.label().is_empty());
            assert!(!s.to_string().is_empty());
        }
    }

    #[test]
    fn scenario_b_heavier_than_a() {
        // "more pronounced for the more computationally-intensive
        // Scenario B": the full pipeline (recognition + deduplication)
        // costs more compute than Scenario A's.
        let total = |s: Scenario| -> f64 {
            s.phases()
                .iter()
                .map(|p| p.app.cloud_profile().exec.mean_secs())
                .sum()
        };
        assert!(total(Scenario::MovingPeople) > total(Scenario::StationaryItems));
    }
}

//! Property-based tests for the network substrate.

use hivemind_net::fabric::{Fabric, Transfer};
use hivemind_net::link::Link;
use hivemind_net::rpc::RateGate;
use hivemind_net::topology::{Node, Topology, TopologyParams};
use hivemind_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// FIFO links deliver in arrival order, never faster than the wire
    /// allows, and conserve every byte.
    #[test]
    fn link_is_fifo_and_work_conserving(
        arrivals in prop::collection::vec((0u64..5_000_000, 1u64..2_000_000), 1..100),
        bw_mbps in 1.0f64..1000.0,
    ) {
        let mut arrivals = arrivals;
        arrivals.sort_by_key(|&(t, _)| t);
        let bytes_per_sec = bw_mbps * 1e6;
        let mut link: Link<usize> = Link::new(bytes_per_sec, SimDuration::from_micros(10));
        let mut total_bytes = 0u64;
        for (i, &(t_us, bytes)) in arrivals.iter().enumerate() {
            link.enqueue(SimTime::ZERO + SimDuration::from_micros(t_us), bytes, i);
            total_bytes += bytes;
        }
        let mut deliveries = Vec::new();
        while let Some((t, id)) = link.pop_ready(SimTime::MAX) {
            deliveries.push((t, id));
        }
        prop_assert_eq!(deliveries.len(), arrivals.len());
        prop_assert_eq!(link.bytes_carried(), total_bytes);
        // FIFO: delivery order equals arrival order.
        for (pos, &(_, id)) in deliveries.iter().enumerate() {
            prop_assert_eq!(id, pos);
        }
        // Work conservation: the last delivery is no earlier than
        // first-arrival + total transmission time, and no later than
        // last-arrival + total transmission time (+propagation).
        let tx_total = SimDuration::from_secs_f64(total_bytes as f64 / bytes_per_sec);
        let first_in = SimTime::ZERO + SimDuration::from_micros(arrivals[0].0);
        let last_in = SimTime::ZERO + SimDuration::from_micros(arrivals.last().unwrap().0);
        let last_out = deliveries.last().unwrap().0;
        prop_assert!(last_out >= first_in + tx_total);
        prop_assert!(
            last_out <= last_in + tx_total + SimDuration::from_micros(10) + SimDuration::from_nanos(arrivals.len() as u64)
        );
    }

    /// The multi-hop fabric preserves per-(src,dst) pair ordering: two
    /// transfers between the same endpoints arrive in send order.
    #[test]
    fn fabric_preserves_flow_order(
        sends in prop::collection::vec((0u64..1_000_000, 1u64..3_000_000), 2..60),
        dev in 0u32..16,
        srv in 0u32..12,
    ) {
        let mut sends = sends;
        sends.sort_by_key(|&(t, _)| t);
        let mut fabric = Fabric::new(Topology::new(TopologyParams::default()));
        for (i, &(t_us, bytes)) in sends.iter().enumerate() {
            fabric.send(
                SimTime::ZERO + SimDuration::from_micros(t_us),
                Transfer {
                    src: Node::Device(dev),
                    dst: Node::Server(srv),
                    bytes,
                    tag: i as u64,
                },
            );
        }
        let mut deliveries = Vec::new();
        while let Some(t) = fabric.next_wakeup() {
            deliveries.extend(fabric.advance_to(t));
        }
        prop_assert_eq!(deliveries.len(), sends.len());
        for (pos, d) in deliveries.iter().enumerate() {
            prop_assert_eq!(d.tag, pos as u64, "same-flow transfers stay ordered");
        }
    }

    /// Rate gates never admit above their configured rate, and delays are
    /// monotone within a burst.
    #[test]
    fn rate_gate_enforces_rate(rps in 1.0f64..1e6, burst in 2usize..50) {
        let mut gate = RateGate::new(rps);
        let mut last = SimDuration::ZERO;
        for i in 0..burst {
            let delay = gate.admit(SimTime::ZERO);
            prop_assert!(delay >= last);
            let expected = i as f64 / rps;
            // The gate quantizes its interval to whole nanoseconds, so
            // allow up to a nanosecond of drift per admitted message.
            prop_assert!(
                (delay.as_secs_f64() - expected).abs() <= (i as f64 + 1.0) * 1e-9
            );
            last = delay;
        }
    }

    /// Every route in every topology size starts and ends at the right
    /// link classes and stays in bounds.
    #[test]
    fn topology_routes_are_wellformed(devices in 1u32..200, servers in 1u32..24, d in 0u32..200, s in 0u32..24) {
        prop_assume!(d < devices && s < servers);
        let topo = Topology::new(TopologyParams {
            devices,
            servers,
            ..TopologyParams::default()
        });
        let up = topo.path(Node::Device(d), Node::Server(s));
        prop_assert!(!up.is_empty());
        for link in &up {
            prop_assert!(link.index() < topo.links().len());
        }
        use hivemind_net::topology::LinkClass;
        prop_assert_eq!(topo.links()[up[0].index()].class, LinkClass::WirelessMedium);
        prop_assert_eq!(
            topo.links()[up.last().unwrap().index()].class,
            LinkClass::ServerNic
        );
        let down = topo.path(Node::Server(s), Node::Device(d));
        prop_assert_eq!(up.len(), down.len());
    }
}

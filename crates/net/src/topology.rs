//! Node naming and the static link graph.
//!
//! The topology mirrors the paper's testbed:
//!
//! ```text
//! drone ──(shared 867 Mb/s wireless medium)── router ──1 Gb/s── ToR switch
//!                                                                │ 40 Gb/s
//! server NIC (10 Gb/s tx + 10 Gb/s rx) ─────────────────────────┘
//! ```
//!
//! Drones are assigned to routers round-robin; for large simulated swarms
//! the router count is scaled "proportionately to the real experiments"
//! (Sec. 5.6), i.e. one router per 8 drones, matching 16 drones / 2 routers.

use hivemind_sim::time::SimDuration;

/// A network endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Node {
    /// Edge device `i` of the swarm (drone or robotic car).
    Device(u32),
    /// Backend server `i` in the cluster.
    Server(u32),
}

/// Index of a link in a [`Topology`]'s link table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkRef(pub(crate) u32);

/// A hop sequence through the fabric, stored inline (every route in the
/// two-tier topology is at most [`Path::MAX_HOPS`] links), so building
/// one per transfer never touches the allocator — the fabric's send
/// path is allocation-free in steady state. Dereferences to a
/// `[LinkRef]` slice for iteration and indexing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Path {
    links: [LinkRef; Path::MAX_HOPS],
    len: u8,
}

impl Path {
    /// The longest route the topology produces (device → device across
    /// two routers: wifi, trunk up, switch, trunk down, wifi).
    pub const MAX_HOPS: usize = 5;

    /// A path holding a copy of `links`.
    ///
    /// # Panics
    ///
    /// Panics if `links` exceeds [`Path::MAX_HOPS`].
    pub fn new(links: &[LinkRef]) -> Path {
        assert!(links.len() <= Path::MAX_HOPS, "path exceeds MAX_HOPS");
        let mut inline = [LinkRef(0); Path::MAX_HOPS];
        inline[..links.len()].copy_from_slice(links);
        Path {
            links: inline,
            len: links.len() as u8,
        }
    }
}

impl std::ops::Deref for Path {
    type Target = [LinkRef];

    fn deref(&self) -> &[LinkRef] {
        &self.links[..self.len as usize]
    }
}

impl<'a> IntoIterator for &'a Path {
    type Item = &'a LinkRef;
    type IntoIter = std::slice::Iter<'a, LinkRef>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl LinkRef {
    /// Raw index into the topology's link table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a link represents; used for bandwidth-accounting scopes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkClass {
    /// A router's shared wireless medium (edge ↔ cloud boundary).
    WirelessMedium,
    /// Wired router uplink/downlink to the ToR switch.
    RouterTrunk,
    /// The ToR switch fabric.
    Switch,
    /// A server NIC direction.
    ServerNic,
}

/// Static description of one link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSpec {
    /// Human-readable name for diagnostics.
    pub name: String,
    /// Capacity in bytes per second.
    pub bytes_per_sec: f64,
    /// One-way propagation delay.
    pub propagation: SimDuration,
    /// Accounting class.
    pub class: LinkClass,
}

/// Tunable capacities; defaults are the paper's testbed values.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyParams {
    /// Number of edge devices.
    pub devices: u32,
    /// Number of backend servers (paper: 12).
    pub servers: u32,
    /// Number of wireless routers; `0` means auto-scale (1 per 8 devices,
    /// minimum 2, matching the testbed's 16 drones / 2 routers).
    pub routers: u32,
    /// Wireless medium capacity in bits/s (paper: 867 Mb/s AC2200 routers).
    pub wireless_bps: f64,
    /// Router trunk capacity in bits/s (1 GbE).
    pub trunk_bps: f64,
    /// Switch fabric capacity in bits/s (paper: 40 Gb/s ToR).
    pub switch_bps: f64,
    /// Server NIC capacity in bits/s per direction (paper: 10 GbE).
    pub nic_bps: f64,
    /// Wireless one-way propagation + MAC latency.
    pub wireless_propagation: SimDuration,
    /// Wired one-way propagation per hop.
    pub wired_propagation: SimDuration,
}

impl Default for TopologyParams {
    fn default() -> Self {
        TopologyParams {
            devices: 16,
            servers: 12,
            routers: 0,
            wireless_bps: 867e6,
            trunk_bps: 1e9,
            switch_bps: 40e9,
            nic_bps: 10e9,
            // 802.11 MAC + contention + air time: ~5 ms one-way is
            // typical for an AP carrying a busy swarm.
            wireless_propagation: SimDuration::from_millis(5),
            wired_propagation: SimDuration::from_micros(10),
        }
    }
}

impl TopologyParams {
    /// Effective router count after auto-scaling.
    pub fn effective_routers(&self) -> u32 {
        if self.routers > 0 {
            self.routers
        } else {
            (self.devices.div_ceil(8)).max(2)
        }
    }
}

/// The static link graph plus routing.
#[derive(Debug, Clone)]
pub struct Topology {
    params: TopologyParams,
    routers: u32,
    links: Vec<LinkSpec>,
    // Link table layout:
    //   [0, R)            wireless medium per router
    //   [R, 2R)           router trunk up (to switch)
    //   [2R, 3R)          router trunk down (from switch)
    //   [3R]              switch fabric
    //   [3R+1 + 2s]       server s NIC tx
    //   [3R+2 + 2s]       server s NIC rx
}

impl Topology {
    /// Builds the testbed topology from `params`.
    ///
    /// # Panics
    ///
    /// Panics if `params.devices == 0` or `params.servers == 0`.
    pub fn new(params: TopologyParams) -> Self {
        assert!(params.devices > 0, "topology needs at least one device");
        assert!(params.servers > 0, "topology needs at least one server");
        let routers = params.effective_routers();
        let mut links = Vec::new();
        let bits = |bps: f64| bps / 8.0;
        for r in 0..routers {
            links.push(LinkSpec {
                name: format!("wifi{r}"),
                bytes_per_sec: bits(params.wireless_bps),
                propagation: params.wireless_propagation,
                class: LinkClass::WirelessMedium,
            });
        }
        for r in 0..routers {
            links.push(LinkSpec {
                name: format!("trunk-up{r}"),
                bytes_per_sec: bits(params.trunk_bps),
                propagation: params.wired_propagation,
                class: LinkClass::RouterTrunk,
            });
        }
        for r in 0..routers {
            links.push(LinkSpec {
                name: format!("trunk-down{r}"),
                bytes_per_sec: bits(params.trunk_bps),
                propagation: params.wired_propagation,
                class: LinkClass::RouterTrunk,
            });
        }
        // "We scale up the network links proportionately to the real
        // experiments" (Sec. 5.6): the testbed pairs a 40 Gb/s ToR with
        // 2 routers, so simulated swarms get 20 Gb/s of switching fabric
        // per router.
        let switch_scale = (routers as f64 / 2.0).max(1.0);
        links.push(LinkSpec {
            name: "tor".to_string(),
            bytes_per_sec: bits(params.switch_bps) * switch_scale,
            propagation: params.wired_propagation,
            class: LinkClass::Switch,
        });
        for s in 0..params.servers {
            links.push(LinkSpec {
                name: format!("nic-tx{s}"),
                bytes_per_sec: bits(params.nic_bps),
                propagation: params.wired_propagation,
                class: LinkClass::ServerNic,
            });
            links.push(LinkSpec {
                name: format!("nic-rx{s}"),
                bytes_per_sec: bits(params.nic_bps),
                propagation: params.wired_propagation,
                class: LinkClass::ServerNic,
            });
        }
        Topology {
            params,
            routers,
            links,
        }
    }

    /// The construction parameters.
    pub fn params(&self) -> &TopologyParams {
        &self.params
    }

    /// Number of wireless routers in the topology.
    pub fn routers(&self) -> u32 {
        self.routers
    }

    /// All link specifications, indexed by [`LinkRef`].
    pub fn links(&self) -> &[LinkSpec] {
        &self.links
    }

    /// The router serving a device (round-robin assignment).
    pub fn router_of(&self, device: u32) -> u32 {
        device % self.routers
    }

    /// Conservative cross-shard lookahead: the smallest propagation delay
    /// on any wireless-medium link. No event generated by one device can
    /// influence hardware owned by another in less virtual time than a
    /// wireless hop, so a sharded engine may safely advance each device
    /// partition by this window between synchronization barriers.
    pub fn lookahead(&self) -> SimDuration {
        self.links
            .iter()
            .filter(|l| l.class == LinkClass::WirelessMedium)
            .map(|l| l.propagation)
            .min()
            .unwrap_or(self.params.wireless_propagation)
    }

    fn wifi(&self, r: u32) -> LinkRef {
        LinkRef(r)
    }
    fn trunk_up(&self, r: u32) -> LinkRef {
        LinkRef(self.routers + r)
    }
    fn trunk_down(&self, r: u32) -> LinkRef {
        LinkRef(2 * self.routers + r)
    }
    fn switch(&self) -> LinkRef {
        LinkRef(3 * self.routers)
    }
    fn nic_tx(&self, s: u32) -> LinkRef {
        LinkRef(3 * self.routers + 1 + 2 * s)
    }
    fn nic_rx(&self, s: u32) -> LinkRef {
        LinkRef(3 * self.routers + 2 + 2 * s)
    }

    /// The hop sequence from `src` to `dst`. An empty path means local
    /// (same-node) delivery.
    ///
    /// # Panics
    ///
    /// Panics if a node index exceeds the topology size.
    pub fn path(&self, src: Node, dst: Node) -> Path {
        match (src, dst) {
            (a, b) if a == b => Path::new(&[]),
            (Node::Device(d), Node::Server(s)) => {
                self.check(src, dst);
                let r = self.router_of(d);
                Path::new(&[
                    self.wifi(r),
                    self.trunk_up(r),
                    self.switch(),
                    self.nic_rx(s),
                ])
            }
            (Node::Server(s), Node::Device(d)) => {
                self.check(src, dst);
                let r = self.router_of(d);
                Path::new(&[
                    self.nic_tx(s),
                    self.switch(),
                    self.trunk_down(r),
                    self.wifi(r),
                ])
            }
            (Node::Server(a), Node::Server(b)) => {
                self.check(src, dst);
                Path::new(&[self.nic_tx(a), self.switch(), self.nic_rx(b)])
            }
            (Node::Device(_), Node::Device(_)) => {
                // Device-to-device traffic relays through its router(s); the
                // paper's platforms never use it directly but the distributed
                // baseline could. Route through both media.
                self.check(src, dst);
                let (Node::Device(a), Node::Device(b)) = (src, dst) else {
                    unreachable!()
                };
                let ra = self.router_of(a);
                let rb = self.router_of(b);
                if ra == rb {
                    Path::new(&[self.wifi(ra), self.wifi(ra)])
                } else {
                    Path::new(&[
                        self.wifi(ra),
                        self.trunk_up(ra),
                        self.switch(),
                        self.trunk_down(rb),
                        self.wifi(rb),
                    ])
                }
            }
        }
    }

    fn check(&self, src: Node, dst: Node) {
        for n in [src, dst] {
            match n {
                Node::Device(d) => assert!(
                    d < self.params.devices,
                    "device {d} out of range ({} devices)",
                    self.params.devices
                ),
                Node::Server(s) => assert!(
                    s < self.params.servers,
                    "server {s} out of range ({} servers)",
                    self.params.servers
                ),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_testbed() {
        let t = Topology::new(TopologyParams::default());
        assert_eq!(t.routers(), 2);
        // 2 wifi + 2 up + 2 down + 1 switch + 24 NIC directions.
        assert_eq!(t.links().len(), 31);
        let wifi = &t.links()[0];
        assert_eq!(wifi.class, LinkClass::WirelessMedium);
        assert!((wifi.bytes_per_sec - 867e6 / 8.0).abs() < 1.0);
    }

    #[test]
    fn lookahead_is_the_wireless_hop() {
        let t = Topology::new(TopologyParams::default());
        assert_eq!(t.lookahead(), SimDuration::from_millis(5));
        let p = TopologyParams {
            wireless_propagation: SimDuration::from_millis(2),
            ..TopologyParams::default()
        };
        assert_eq!(Topology::new(p).lookahead(), SimDuration::from_millis(2));
    }

    #[test]
    fn router_autoscaling() {
        let p = TopologyParams {
            devices: 1000,
            ..TopologyParams::default()
        };
        assert_eq!(p.effective_routers(), 125);
        let p = TopologyParams {
            devices: 4,
            ..TopologyParams::default()
        };
        assert_eq!(p.effective_routers(), 2);
    }

    #[test]
    fn uplink_path_shape() {
        let t = Topology::new(TopologyParams::default());
        let path = t.path(Node::Device(0), Node::Server(3));
        assert_eq!(path.len(), 4);
        assert_eq!(t.links()[path[0].index()].class, LinkClass::WirelessMedium);
        assert_eq!(t.links()[path[3].index()].class, LinkClass::ServerNic);
    }

    #[test]
    fn downlink_reverses_classes() {
        let t = Topology::new(TopologyParams::default());
        let path = t.path(Node::Server(3), Node::Device(0));
        assert_eq!(t.links()[path[0].index()].class, LinkClass::ServerNic);
        assert_eq!(
            t.links()[path.last().unwrap().index()].class,
            LinkClass::WirelessMedium
        );
    }

    #[test]
    fn server_to_server_avoids_wireless() {
        let t = Topology::new(TopologyParams::default());
        let path = t.path(Node::Server(0), Node::Server(1));
        assert!(path
            .iter()
            .all(|l| t.links()[l.index()].class != LinkClass::WirelessMedium));
    }

    #[test]
    fn local_delivery_is_empty_path() {
        let t = Topology::new(TopologyParams::default());
        assert!(t.path(Node::Server(2), Node::Server(2)).is_empty());
        assert!(t.path(Node::Device(5), Node::Device(5)).is_empty());
    }

    #[test]
    fn device_pair_same_router_uses_medium_twice() {
        let t = Topology::new(TopologyParams::default());
        // Devices 0 and 2 share router 0 under round-robin with 2 routers.
        let path = t.path(Node::Device(0), Node::Device(2));
        assert_eq!(path.len(), 2);
        assert_eq!(path[0], path[1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_device_panics() {
        let t = Topology::new(TopologyParams::default());
        let _ = t.path(Node::Device(99), Node::Server(0));
    }

    #[test]
    fn routers_spread_devices() {
        let t = Topology::new(TopologyParams::default());
        assert_eq!(t.router_of(0), 0);
        assert_eq!(t.router_of(1), 1);
        assert_eq!(t.router_of(2), 0);
    }
}

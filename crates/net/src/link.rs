//! A single store-and-forward FIFO link.
//!
//! Each link serializes transfers in arrival order at its configured
//! capacity: a transfer arriving at `t` begins transmission at
//! `max(t, busy_until)`, occupies the link for `bytes / capacity`, and
//! arrives at the far end one propagation delay after transmission ends.
//! This is the minimal model that still produces the queueing collapse of
//! Fig. 3b when offered load exceeds capacity.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use hivemind_sim::time::{SimDuration, SimTime};

/// An opaque item flowing through a link (the fabric stores hop state here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkItem<T> {
    /// When the item arrived at this link's input queue.
    pub arrived: SimTime,
    /// FIFO tie-break for simultaneous arrivals.
    pub seq: u64,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Caller payload.
    pub payload: T,
}

impl<T: Eq> PartialOrd for LinkItem<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T: Eq> Ord for LinkItem<T> {
    // Min-heap by (arrived, seq).
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .arrived
            .cmp(&self.arrived)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// FIFO store-and-forward link state.
///
/// # Examples
///
/// ```rust
/// use hivemind_net::link::Link;
/// use hivemind_sim::time::{SimDuration, SimTime};
///
/// // 1000 bytes/s, 10 ms propagation.
/// let mut link: Link<&str> = Link::new(1000.0, SimDuration::from_millis(10));
/// link.enqueue(SimTime::ZERO, 500, "a"); // 0.5 s transmission
/// link.enqueue(SimTime::ZERO, 500, "b"); // queued behind "a"
/// let (t_a, a) = link.pop_ready(SimTime::MAX).unwrap();
/// let (t_b, b) = link.pop_ready(SimTime::MAX).unwrap();
/// assert_eq!(a, "a");
/// assert_eq!(t_a.as_secs_f64(), 0.510);
/// assert_eq!(b, "b");
/// assert_eq!(t_b.as_secs_f64(), 1.010);
/// ```
#[derive(Debug)]
pub struct Link<T> {
    bytes_per_sec: f64,
    propagation: SimDuration,
    busy_until: SimTime,
    seq: u64,
    /// Items waiting to start transmission, ordered by arrival.
    waiting: BinaryHeap<LinkItem<T>>,
    /// Items in flight: (delivery_time, seq, payload), ordered by delivery.
    in_flight: BinaryHeap<InFlight<T>>,
    /// Total bytes that completed transmission on this link.
    bytes_carried: u64,
}

#[derive(Debug)]
struct InFlight<T> {
    deliver_at: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for InFlight<T> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl<T> Eq for InFlight<T> {}
impl<T> PartialOrd for InFlight<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for InFlight<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .deliver_at
            .cmp(&self.deliver_at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T: Eq> Link<T> {
    /// Creates a link with `bytes_per_sec` capacity and one-way
    /// `propagation` delay.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not strictly positive and finite.
    pub fn new(bytes_per_sec: f64, propagation: SimDuration) -> Self {
        assert!(
            bytes_per_sec > 0.0 && bytes_per_sec.is_finite(),
            "link capacity must be positive"
        );
        Link {
            bytes_per_sec,
            propagation,
            busy_until: SimTime::ZERO,
            seq: 0,
            // Pre-reserved so a link's first few transfers don't allocate
            // mid-mission; deeper queues grow once to their high water.
            waiting: BinaryHeap::with_capacity(8),
            in_flight: BinaryHeap::with_capacity(8),
            bytes_carried: 0,
        }
    }

    /// Queues an item arriving at time `now`.
    pub fn enqueue(&mut self, now: SimTime, bytes: u64, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.waiting.push(LinkItem {
            arrived: now,
            seq,
            bytes,
            payload,
        });
        self.pump();
    }

    /// Starts transmission for every queued item whose start time is
    /// already determined (FIFO: each starts when the previous finishes).
    fn pump(&mut self) {
        while let Some(head) = self.waiting.pop() {
            let start = self.busy_until.max(head.arrived);
            let tx = SimDuration::from_secs_f64(head.bytes as f64 / self.bytes_per_sec);
            let done = start + tx;
            self.busy_until = done;
            self.bytes_carried += head.bytes;
            self.in_flight.push(InFlight {
                deliver_at: done + self.propagation,
                seq: head.seq,
                payload: head.payload,
            });
        }
    }

    /// The earliest pending delivery time, if any.
    pub fn next_delivery(&self) -> Option<SimTime> {
        self.in_flight.peek().map(|f| f.deliver_at)
    }

    /// Pops the next item whose delivery time is `<= now`, returning
    /// `(delivery_time, payload)`.
    pub fn pop_ready(&mut self, now: SimTime) -> Option<(SimTime, T)> {
        if self.in_flight.peek().is_some_and(|f| f.deliver_at <= now) {
            let f = self.in_flight.pop().expect("peeked item vanished");
            Some((f.deliver_at, f.payload))
        } else {
            None
        }
    }

    /// Items currently queued or in flight.
    pub fn load(&self) -> usize {
        self.waiting.len() + self.in_flight.len()
    }

    /// Items waiting to start transmission.
    pub fn waiting_count(&self) -> usize {
        self.waiting.len()
    }

    /// Items transmitted but not yet delivered.
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }

    /// Instant at which the link next becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total payload bytes that have begun transmission.
    pub fn bytes_carried(&self) -> u64 {
        self.bytes_carried
    }

    /// Link capacity in bytes per second.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bytes_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> Link<u32> {
        // 1 MB/s, 1 ms propagation.
        Link::new(1e6, SimDuration::from_millis(1))
    }

    #[test]
    fn single_transfer_timing() {
        let mut l = link();
        l.enqueue(SimTime::from_secs(1), 500_000, 7);
        let (t, v) = l.pop_ready(SimTime::MAX).unwrap();
        assert_eq!(v, 7);
        // 0.5 s transmission + 1 ms propagation.
        assert_eq!(t.as_secs_f64(), 1.501);
        assert_eq!(l.bytes_carried(), 500_000);
    }

    #[test]
    fn fifo_serialization_under_contention() {
        let mut l = link();
        l.enqueue(SimTime::ZERO, 1_000_000, 1);
        l.enqueue(SimTime::ZERO, 1_000_000, 2);
        l.enqueue(SimTime::ZERO, 1_000_000, 3);
        let mut times = vec![];
        while let Some((t, v)) = l.pop_ready(SimTime::MAX) {
            times.push((t.as_secs_f64(), v));
        }
        assert_eq!(
            times,
            vec![(1.001, 1), (2.001, 2), (3.001, 3)],
            "each 1 MB transfer serializes for 1 s"
        );
    }

    #[test]
    fn idle_gap_resets_queueing() {
        let mut l = link();
        l.enqueue(SimTime::ZERO, 1_000_000, 1);
        // Arrives long after the first transfer finished.
        l.enqueue(SimTime::from_secs(10), 1_000_000, 2);
        let (_, _) = l.pop_ready(SimTime::MAX).unwrap();
        let (t2, _) = l.pop_ready(SimTime::MAX).unwrap();
        assert_eq!(t2.as_secs_f64(), 11.001);
    }

    #[test]
    fn pop_ready_respects_now() {
        let mut l = link();
        l.enqueue(SimTime::ZERO, 1_000_000, 1);
        assert!(l.pop_ready(SimTime::from_secs(1)).is_none()); // delivers at 1.001
        assert!(l.pop_ready(SimTime::from_secs(2)).is_some());
    }

    #[test]
    fn next_delivery_tracks_head() {
        let mut l = link();
        assert_eq!(l.next_delivery(), None);
        l.enqueue(SimTime::ZERO, 2_000_000, 1);
        assert_eq!(l.next_delivery().unwrap().as_secs_f64(), 2.001);
    }

    #[test]
    fn load_counts_everything() {
        let mut l = link();
        l.enqueue(SimTime::ZERO, 100, 1);
        l.enqueue(SimTime::ZERO, 100, 2);
        assert_eq!(l.load(), 2);
        let _ = l.pop_ready(SimTime::MAX);
        assert_eq!(l.load(), 1);
    }

    #[test]
    fn zero_byte_message_costs_only_propagation() {
        let mut l = link();
        l.enqueue(SimTime::ZERO, 0, 1);
        let (t, _) = l.pop_ready(SimTime::MAX).unwrap();
        assert_eq!(t.as_secs_f64(), 0.001);
    }
}

//! RPC processing cost model.
//!
//! A network transfer pays for wire time on every hop (modeled by the
//! [`fabric`](crate::fabric)) *plus* end-host protocol processing:
//! serialization, kernel network stack traversal, and user-space dispatch.
//! The paper's FPGA fabric exists precisely to remove these costs —
//! "HiveMind's network acceleration achieves 2.1 µs round trip latencies …
//! and a max throughput with a single CPU core of 12.4 Mrps for 64 B RPCs"
//! (Sec. 4.5). `hivemind-accel` builds the accelerated profile from this
//! module's types.

use hivemind_sim::dist::Dist;
use hivemind_sim::time::{SimDuration, SimTime};
use rand::Rng;

/// Per-message end-host processing costs for one side of an RPC.
#[derive(Debug, Clone, PartialEq)]
pub struct RpcProfile {
    /// Cost to send a message (serialize + stack traversal).
    pub send_overhead: Dist,
    /// Cost to receive a message (interrupt, copy, dispatch).
    pub recv_overhead: Dist,
    /// Per-byte marshalling cost in seconds (software copies scale with
    /// payload size; zero-copy hardware paths set this to zero).
    pub per_byte: f64,
    /// Maximum sustainable requests/second per end-host core, if capped.
    pub max_rps_per_core: Option<f64>,
}

impl RpcProfile {
    /// The classic kernel TCP/IP + Thrift software stack: tens of
    /// microseconds per message per side, with per-byte copy costs.
    pub fn software() -> Self {
        RpcProfile {
            send_overhead: Dist::lognormal_median_sigma(25e-6, 0.3),
            recv_overhead: Dist::lognormal_median_sigma(30e-6, 0.3),
            per_byte: 0.35e-9, // ~2.8 GB/s effective copy/marshal bandwidth
            max_rps_per_core: Some(0.8e6),
        }
    }

    /// A software stack tuned for constrained edge CPUs (the drones' 1 GHz
    /// Cortex-A8 runs the same stack several times slower).
    pub fn edge_software() -> Self {
        RpcProfile {
            send_overhead: Dist::lognormal_median_sigma(120e-6, 0.35),
            recv_overhead: Dist::lognormal_median_sigma(140e-6, 0.35),
            per_byte: 2.0e-9,
            max_rps_per_core: Some(0.1e6),
        }
    }

    /// Samples the host-side cost of sending `bytes`.
    pub fn send_cost<R: Rng + ?Sized>(&self, rng: &mut R, bytes: u64) -> SimDuration {
        self.send_overhead.sample(rng) + SimDuration::from_secs_f64(self.per_byte * bytes as f64)
    }

    /// Samples the host-side cost of receiving `bytes`.
    pub fn recv_cost<R: Rng + ?Sized>(&self, rng: &mut R, bytes: u64) -> SimDuration {
        self.recv_overhead.sample(rng) + SimDuration::from_secs_f64(self.per_byte * bytes as f64)
    }

    /// Mean one-way processing cost for a message of `bytes`, for the
    /// analytical model.
    pub fn mean_one_way_secs(&self, bytes: u64) -> f64 {
        self.send_overhead.mean_secs()
            + self.recv_overhead.mean_secs()
            + 2.0 * self.per_byte * bytes as f64
    }
}

/// A per-core token-bucket rate limiter for RPC processing throughput.
///
/// When a profile declares `max_rps_per_core`, end hosts push message
/// timestamps through a [`RateGate`] to model head-of-line blocking once
/// the core's packet-processing capacity is exceeded.
///
/// # Examples
///
/// ```rust
/// use hivemind_net::rpc::RateGate;
/// use hivemind_sim::time::SimTime;
///
/// let mut gate = RateGate::new(2.0); // 2 messages/second
/// assert_eq!(gate.admit(SimTime::ZERO).as_secs_f64(), 0.0);
/// assert_eq!(gate.admit(SimTime::ZERO).as_secs_f64(), 0.5);
/// assert_eq!(gate.admit(SimTime::ZERO).as_secs_f64(), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RateGate {
    interval: SimDuration,
    next_free: SimTime,
}

impl RateGate {
    /// Creates a gate that admits `rps` messages per second.
    ///
    /// # Panics
    ///
    /// Panics if `rps` is not strictly positive and finite.
    pub fn new(rps: f64) -> Self {
        assert!(rps > 0.0 && rps.is_finite(), "rate must be positive");
        RateGate {
            interval: SimDuration::from_secs_f64(1.0 / rps),
            next_free: SimTime::ZERO,
        }
    }

    /// Admits a message at `now`, returning the queueing delay it incurs
    /// before processing can start.
    pub fn admit(&mut self, now: SimTime) -> SimDuration {
        let start = self.next_free.max(now);
        self.next_free = start + self.interval;
        start.saturating_since(now)
    }

    /// The instant at which the next admission would start immediately.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hivemind_sim::rng::RngForge;

    #[test]
    fn software_profile_costs_scale_with_bytes() {
        let p = RpcProfile::software();
        let mut rng = RngForge::new(1).stream("rpc");
        let small = p.send_cost(&mut rng, 64);
        let large = p.send_cost(&mut rng, 10_000_000);
        assert!(large > small);
        // 10 MB at 0.35 ns/B dominates: ≈ 3.5 ms.
        assert!(large.as_millis_f64() > 3.0);
    }

    #[test]
    fn edge_stack_is_slower() {
        let edge = RpcProfile::edge_software();
        let cloud = RpcProfile::software();
        assert!(edge.mean_one_way_secs(1024) > cloud.mean_one_way_secs(1024) * 3.0);
    }

    #[test]
    fn mean_one_way_matches_parts() {
        let p = RpcProfile {
            send_overhead: Dist::constant(1e-6),
            recv_overhead: Dist::constant(2e-6),
            per_byte: 1e-9,
            max_rps_per_core: None,
        };
        let m = p.mean_one_way_secs(1000);
        assert!((m - (3e-6 + 2e-6)).abs() < 1e-15);
    }

    #[test]
    fn rate_gate_spaces_admissions() {
        let mut g = RateGate::new(1000.0);
        let mut delays = vec![];
        for _ in 0..5 {
            delays.push(g.admit(SimTime::ZERO).as_micros_f64());
        }
        assert_eq!(delays, vec![0.0, 1000.0, 2000.0, 3000.0, 4000.0]);
    }

    #[test]
    fn rate_gate_idles_between_bursts() {
        let mut g = RateGate::new(10.0);
        assert_eq!(g.admit(SimTime::ZERO), SimDuration::ZERO);
        // Long quiet period: the next message is admitted immediately.
        assert_eq!(g.admit(SimTime::from_secs(100)), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = RateGate::new(0.0);
    }
}

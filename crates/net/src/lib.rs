//! # hivemind-net
//!
//! Network substrate for the HiveMind reproduction: the wireless medium
//! between the swarm and the backend, the cluster's top-of-rack switch and
//! server NICs, and the cost model for RPC processing.
//!
//! The paper's testbed (Sec. 2.1): 12 servers with 10 GbE NICs behind a
//! 40 Gb/s ToR switch, talking to the swarm through two 867 Mb/s 802.11
//! routers. Congestion on the wireless links is what produces the latency
//! blow-up of Fig. 3b and the bandwidth ceilings of Figs. 14b/17; this
//! crate reproduces those phenomena with store-and-forward FIFO queueing on
//! every hop.
//!
//! * [`topology`] — node naming and the static link graph with paper-
//!   calibrated capacities.
//! * [`link`] — a single FIFO store-and-forward link.
//! * [`fabric`] — the multi-hop [`Fabric`] component that
//!   routes transfers hop by hop and reports deliveries plus per-scope
//!   bandwidth accounting.
//! * [`rpc`] — per-message RPC processing costs (software stack vs the
//!   FPGA-offloaded stack modeled in `hivemind-accel`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fabric;
pub mod link;
pub mod rpc;
pub mod topology;

pub use fabric::{Delivery, Fabric, Transfer, TransferId};
pub use rpc::RpcProfile;
pub use topology::{Node, Topology};

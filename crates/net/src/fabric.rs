//! Multi-hop transfer routing over a [`Topology`].
//!
//! The [`Fabric`] moves [`Transfer`]s hop by hop across FIFO links,
//! preserving global arrival order (the earliest in-flight hop completion
//! anywhere in the fabric is always processed first), and meters traffic
//! that crosses the edge↔cloud wireless boundary for the bandwidth figures.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use hivemind_sim::component::{earliest, Component};
use hivemind_sim::faults::{self, NetFaults};
use hivemind_sim::overload::NetBackpressure;
use hivemind_sim::stats::Meter;
use hivemind_sim::time::{SimDuration, SimTime};
use hivemind_sim::trace::{ArgValue, TraceHandle};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::link::Link;
use crate::topology::{LinkClass, Node, Path, Topology};

/// Unique id of a transfer within one fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransferId(pub u64);

/// A payload to move across the network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transfer {
    /// Source node.
    pub src: Node,
    /// Destination node.
    pub dst: Node,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Opaque correlation tag chosen by the caller.
    pub tag: u64,
}

/// A completed transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Id assigned at send time.
    pub id: TransferId,
    /// Caller's correlation tag.
    pub tag: u64,
    /// Source node.
    pub src: Node,
    /// Destination node.
    pub dst: Node,
    /// Payload size in bytes.
    pub bytes: u64,
    /// When the transfer entered the fabric.
    pub sent_at: SimTime,
    /// When the last hop delivered it.
    pub delivered_at: SimTime,
}

impl Delivery {
    /// End-to-end network latency of this transfer.
    pub fn latency(&self) -> SimDuration {
        self.delivered_at - self.sent_at
    }
}

/// Counters describing what the fault plane did to this fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetFaultStats {
    /// Retransmission rounds forced by packet loss.
    pub packets_lost: u64,
    /// Transfers held back by a disconnect window or partition.
    pub transfers_held: u64,
    /// Most transfers simultaneously held behind outage/partition windows.
    pub held_high_water: u64,
    /// Transfers tail-dropped because a hold would have exceeded
    /// `NetFaults::hold_bound` (0 when the bound is unset).
    pub transfers_dropped: u64,
}

/// Per-transfer fault state: the plan's network knobs plus a private RNG
/// drawn from the dedicated fault lane of the seed chain. Absent (`None`
/// on the fabric) unless the experiment's `FaultPlan` asks for loss or
/// outages, so fault-free runs make zero extra draws.
#[derive(Debug)]
struct FabricFaults {
    cfg: NetFaults,
    rng: SmallRng,
    stats: NetFaultStats,
    /// Transfers currently held behind outage/partition windows; bounded
    /// by `cfg.hold_bound` when set.
    held_now: u64,
}

/// Bounded-ingress backpressure state: the policy knobs plus a counter of
/// hold decisions. Absent (`None` on the fabric) unless an
/// [`OverloadPolicy`](hivemind_sim::overload::OverloadPolicy) arms it, so
/// the default path is byte-identical to a fabric without the feature.
/// Decisions are pure functions of link occupancy and event time — no RNG.
#[derive(Debug)]
struct Backpressure {
    cfg: NetBackpressure,
    /// Hold decisions made (a transfer re-held at each re-offer counts
    /// once per hold).
    holds: u64,
}

#[derive(Debug, PartialEq, Eq)]
struct HopState {
    id: TransferId,
    tag: u64,
    src: Node,
    dst: Node,
    bytes: u64,
    sent_at: SimTime,
    path: Path,
    next_hop: usize,
}

/// A fault-held transfer queued for release, min-ordered by
/// `(release time, transfer id)` — the same total order the old linear
/// scan selected, now O(log n) per release.
#[derive(Debug)]
struct Delayed {
    at: SimTime,
    /// `true` when the delay came from an outage/partition window (the
    /// hold is charged against `hold_bound` and released on re-entry);
    /// `false` for backpressure re-offers and retransmit pauses.
    fault_hold: bool,
    state: HopState,
}

impl PartialEq for Delayed {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.state.id == other.state.id
    }
}
impl Eq for Delayed {}
impl PartialOrd for Delayed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Delayed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.state.id).cmp(&(other.at, other.state.id))
    }
}

/// A completed delivery awaiting emission, min-ordered by
/// `(delivered_at, id)` — the exact key `advance_to` used to sort by, so
/// popping due entries replaces the old filter + clone + sort pass.
#[derive(Debug)]
struct PendingDelivery(Delivery);

impl PartialEq for PendingDelivery {
    fn eq(&self, other: &Self) -> bool {
        self.0.delivered_at == other.0.delivered_at && self.0.id == other.0.id
    }
}
impl Eq for PendingDelivery {}
impl PartialOrd for PendingDelivery {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingDelivery {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.0.delivered_at, self.0.id).cmp(&(other.0.delivered_at, other.0.id))
    }
}

/// The network fabric component.
///
/// # Examples
///
/// ```rust
/// use hivemind_net::fabric::{Fabric, Transfer};
/// use hivemind_net::topology::{Node, Topology, TopologyParams};
/// use hivemind_sim::time::SimTime;
///
/// let mut fabric = Fabric::new(Topology::new(TopologyParams::default()));
/// fabric.send(
///     SimTime::ZERO,
///     Transfer { src: Node::Device(0), dst: Node::Server(0), bytes: 2_000_000, tag: 1 },
/// );
/// let mut deliveries = Vec::new();
/// while let Some(wake) = fabric.next_wakeup() {
///     deliveries.extend(fabric.advance_to(wake));
/// }
/// assert_eq!(deliveries.len(), 1);
/// assert!(deliveries[0].latency().as_millis_f64() > 18.0); // 2 MB over ~108 MB/s WiFi
/// ```
#[derive(Debug)]
pub struct Fabric {
    topology: Topology,
    links: Vec<Link<HopState>>,
    next_id: u64,
    /// Completed deliveries waiting to be emitted, min-ordered by
    /// `(delivered_at, id)` so draining pops them already chronological.
    local: BinaryHeap<Reverse<PendingDelivery>>,
    /// Delay applied to same-node "transfers" (loopback copy).
    local_delay: SimDuration,
    edge_meter: Meter,
    total_meter: Meter,
    /// Conservative wake-up index: `(time, link)` entries pushed at each
    /// enqueue; entries may be stale (early), never late. Keeps
    /// `next_wakeup`/`advance_to` away from O(links) scans so
    /// thousand-device topologies stay fast.
    wake: BinaryHeap<Reverse<(SimTime, u32)>>,
    tracer: TraceHandle,
    /// Fault-plan state; `None` unless the experiment injects network
    /// faults (the inert path makes no extra RNG draws).
    faults: Option<FabricFaults>,
    /// Bounded-ingress backpressure; `None` unless armed by an overload
    /// policy.
    backpressure: Option<Backpressure>,
    /// Transfers held back by an outage/partition, min-ordered by release
    /// time. Released in `(time, id)` order interleaved with hop
    /// completions.
    delayed: BinaryHeap<Reverse<Delayed>>,
}

impl Fabric {
    /// Creates a fabric over `topology` with a 1-second metering window.
    pub fn new(topology: Topology) -> Self {
        let links = topology
            .links()
            .iter()
            .map(|spec| Link::new(spec.bytes_per_sec, spec.propagation))
            .collect();
        Fabric {
            topology,
            links,
            next_id: 0,
            local: BinaryHeap::new(),
            local_delay: SimDuration::from_micros(50),
            edge_meter: Meter::new(SimDuration::from_secs(1)),
            total_meter: Meter::new(SimDuration::from_secs(1)),
            wake: BinaryHeap::new(),
            tracer: TraceHandle::disabled(),
            faults: None,
            backpressure: None,
            delayed: BinaryHeap::new(),
        }
    }

    /// Arms the per-transfer fault pass (packet loss, disconnect windows,
    /// partitions). `rng` must come from the dedicated `"faults"` lane of
    /// the replicate's seed chain so arming it never perturbs the
    /// fault-free streams.
    pub fn set_faults(&mut self, cfg: NetFaults, rng: SmallRng) {
        if cfg.per_transfer() {
            self.faults = Some(FabricFaults {
                cfg,
                rng,
                stats: NetFaultStats::default(),
                held_now: 0,
            });
        }
    }

    /// Transfers currently held behind outage/partition windows.
    pub fn held_transfers_now(&self) -> u64 {
        self.faults.as_ref().map(|f| f.held_now).unwrap_or(0)
    }

    /// What the fault plane did so far (zeros when no faults are armed).
    pub fn fault_stats(&self) -> NetFaultStats {
        self.faults.as_ref().map(|f| f.stats).unwrap_or_default()
    }

    /// Arms bounded-ingress backpressure: a transfer whose first hop's
    /// link already holds `ingress_bound` items is held and re-offered
    /// after `retry_delay` instead of joining the queue. Unlike
    /// [`Fabric::set_faults`] this needs no RNG — every hold decision is
    /// a pure function of link occupancy at the offer instant, so arming
    /// an inactive policy changes nothing.
    pub fn set_backpressure(&mut self, cfg: NetBackpressure) {
        if cfg.is_active() {
            self.backpressure = Some(Backpressure { cfg, holds: 0 });
        }
    }

    /// Hold decisions made by ingress backpressure so far (0 when the
    /// feature is not armed).
    pub fn backpressure_holds(&self) -> u64 {
        self.backpressure.as_ref().map(|b| b.holds).unwrap_or(0)
    }

    /// Installs a tracing handle; the fabric then emits a `net/link.load`
    /// counter sample (track = link index) whenever a link's occupancy
    /// changes, plus a `net/send` instant per injected transfer.
    pub fn set_tracer(&mut self, tracer: TraceHandle) {
        self.tracer = tracer;
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Injects a transfer at time `now`, returning its id.
    pub fn send(&mut self, now: SimTime, transfer: Transfer) -> TransferId {
        let id = TransferId(self.next_id);
        self.next_id += 1;
        let path = self.topology.path(transfer.src, transfer.dst);
        self.total_meter.add(now, transfer.bytes as f64);
        let wireless = path
            .iter()
            .any(|l| self.topology.links()[l.index()].class == LinkClass::WirelessMedium);
        if wireless {
            self.edge_meter.add(now, transfer.bytes as f64);
        }
        if self.tracer.is_enabled() {
            self.tracer.instant(
                "net",
                "send",
                0,
                now,
                vec![
                    ("id", ArgValue::U64(id.0)),
                    ("src", ArgValue::Str(format!("{:?}", transfer.src))),
                    ("dst", ArgValue::Str(format!("{:?}", transfer.dst))),
                    ("bytes", ArgValue::U64(transfer.bytes)),
                    ("hops", ArgValue::U64(path.len() as u64)),
                ],
            );
        }
        let state = HopState {
            id,
            tag: transfer.tag,
            src: transfer.src,
            dst: transfer.dst,
            bytes: transfer.bytes,
            sent_at: now,
            path,
            next_hop: 0,
        };
        let (start, fault_hold) = if wireless {
            match self.apply_faults(now, &state) {
                Some(v) => v,
                // Tail-dropped at the hold bound: the id is spent but the
                // transfer never enters the fabric.
                None => return id,
            }
        } else {
            (now, false)
        };
        if start > now {
            self.delayed.push(Reverse(Delayed {
                at: start,
                fault_hold,
                state,
            }));
        } else {
            self.route(now, state);
        }
        id
    }

    /// Applies the armed fault plan to a wireless-crossing transfer.
    /// Returns `Some((start, fault_hold))` — the instant the transfer may
    /// actually enter the fabric, and whether an outage/partition window
    /// held it (charged against `hold_bound`) — or `None` when the hold
    /// bound is full and the transfer is tail-dropped. No-op (and zero
    /// RNG draws) when no faults are armed.
    fn apply_faults(&mut self, now: SimTime, state: &HopState) -> Option<(SimTime, bool)> {
        let Some(f) = self.faults.as_mut() else {
            return Some((now, false));
        };
        let mut start = now;
        // Hold the transfer while any partition, or a disconnect window of
        // an endpoint device, covers its start instant. Windows may chain
        // (release into a later window), hence the loop.
        loop {
            let t = start.as_secs_f64();
            let mut release: Option<f64> = None;
            for p in &f.cfg.partitions {
                if t >= p.from_secs && t < p.until_secs {
                    release = Some(release.map_or(p.until_secs, |r: f64| r.max(p.until_secs)));
                }
            }
            for o in &f.cfg.disconnects {
                let hit =
                    state.src == Node::Device(o.device) || state.dst == Node::Device(o.device);
                if hit && t >= o.from_secs && t < o.until_secs {
                    release = Some(release.map_or(o.until_secs, |r: f64| r.max(o.until_secs)));
                }
            }
            match release {
                Some(r) => start = SimTime::ZERO + SimDuration::from_secs_f64(r),
                None => break,
            }
        }
        let fault_hold = start > now;
        if fault_hold {
            // Bounded hold accounting: a full hold buffer tail-drops the
            // newest transfer instead of growing silently.
            if let Some(bound) = f.cfg.hold_bound {
                if f.held_now >= bound as u64 {
                    f.stats.transfers_dropped += 1;
                    if self.tracer.is_enabled() {
                        self.tracer.instant(
                            "net",
                            "held.drop",
                            0,
                            now,
                            vec![
                                ("transfer", ArgValue::U64(state.id.0)),
                                ("held", ArgValue::U64(f.held_now)),
                            ],
                        );
                    }
                    return None;
                }
            }
            f.held_now += 1;
            f.stats.transfers_held += 1;
            f.stats.held_high_water = f.stats.held_high_water.max(f.held_now);
            if self.tracer.is_enabled() {
                self.tracer
                    .counter("net", "held_transfers", 0, now, f.held_now as f64);
                self.tracer.instant(
                    faults::TRACE_CAT,
                    faults::EV_INJECTED,
                    0,
                    now,
                    vec![
                        ("kind", ArgValue::Str("link_outage".into())),
                        ("transfer", ArgValue::U64(state.id.0)),
                    ],
                );
                self.tracer.instant(
                    faults::TRACE_CAT,
                    faults::EV_RECOVERED,
                    0,
                    start,
                    vec![
                        ("kind", ArgValue::Str("link_outage".into())),
                        ("transfer", ArgValue::U64(state.id.0)),
                    ],
                );
            }
        }
        // Packet loss: each lost round costs one retransmission delay.
        // Capped so a pathological loss rate of 1.0 still terminates
        // (models the transport giving up on backoff and pushing through).
        if f.cfg.packet_loss > 0.0 {
            let mut rounds: u64 = 0;
            while rounds < 50 && f.rng.gen::<f64>() < f.cfg.packet_loss {
                rounds += 1;
            }
            if rounds > 0 {
                f.stats.packets_lost += rounds;
                start += f.cfg.retransmit * rounds;
                if self.tracer.is_enabled() {
                    self.tracer.instant(
                        faults::TRACE_CAT,
                        faults::EV_INJECTED,
                        0,
                        now,
                        vec![
                            ("kind", ArgValue::Str("packet_loss".into())),
                            ("transfer", ArgValue::U64(state.id.0)),
                            ("retransmits", ArgValue::U64(rounds)),
                        ],
                    );
                }
            }
        }
        Some((start, fault_hold))
    }

    fn route(&mut self, now: SimTime, mut state: HopState) {
        if state.next_hop >= state.path.len() {
            self.local.push(Reverse(PendingDelivery(Delivery {
                id: state.id,
                tag: state.tag,
                src: state.src,
                dst: state.dst,
                bytes: state.bytes,
                sent_at: state.sent_at,
                delivered_at: if state.path.is_empty() {
                    now + self.local_delay
                } else {
                    now
                },
            })));
            return;
        }
        let link = state.path[state.next_hop];
        let idx = link.index();
        // Bounded ingress: a transfer about to take its *first* hop onto a
        // link already at the bound is held and re-offered later instead
        // of deepening the queue. Each re-offer re-checks, and time
        // advances every hold, so the transfer eventually enters once the
        // link drains — deterministic backpressure with no drops.
        if state.next_hop == 0 {
            if let Some(bp) = self.backpressure.as_mut() {
                if let Some(bound) = bp.cfg.ingress_bound {
                    if self.links[idx].load() >= bound as usize {
                        bp.holds += 1;
                        if self.tracer.is_enabled() {
                            self.tracer.instant(
                                "net",
                                "backpressure.hold",
                                idx as u32,
                                now,
                                vec![
                                    ("transfer", ArgValue::U64(state.id.0)),
                                    ("load", ArgValue::U64(self.links[idx].load() as u64)),
                                ],
                            );
                        }
                        self.delayed.push(Reverse(Delayed {
                            at: now + bp.cfg.retry_delay,
                            fault_hold: false,
                            state,
                        }));
                        return;
                    }
                }
            }
        }
        state.next_hop += 1;
        let bytes = state.bytes;
        // Only index the link when its head changes: pushing an entry per
        // enqueue would accumulate thousands of duplicates on a saturated
        // link, each re-examined on every head completion (quadratic).
        let prev_head = self.links[idx].next_delivery();
        self.links[idx].enqueue(now, bytes, state);
        let new_head = self.links[idx].next_delivery();
        if new_head != prev_head {
            if let Some(t) = new_head {
                self.wake.push(Reverse((t, idx as u32)));
            }
        }
        self.sample_link(now, idx);
    }

    /// Emits a queue-depth counter sample for link `idx` (no-op when
    /// tracing is disabled).
    fn sample_link(&self, now: SimTime, idx: usize) {
        if self.tracer.is_enabled() {
            self.tracer.counter(
                "net",
                "link.load",
                idx as u32,
                now,
                self.links[idx].load() as f64,
            );
        }
    }

    /// The earliest instant at which the fabric has a delivery to report or
    /// a hop to advance.
    ///
    /// May return a conservatively *early* instant (an index entry made
    /// stale by FIFO progress); waking then is harmless — `advance_to`
    /// reconciles against the true link state.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        let link_next = self.wake.peek().map(|Reverse((t, _))| *t);
        let local_next = self.local.peek().map(|Reverse(p)| p.0.delivered_at);
        let delayed_next = self.delayed.peek().map(|Reverse(d)| d.at);
        earliest([link_next, local_next, delayed_next])
    }

    /// Advances the fabric to `now`, returning all deliveries that completed
    /// at or before `now` in chronological order.
    ///
    /// Convenience wrapper over [`Fabric::advance_into`]; hot callers
    /// should pass their own reusable buffer instead.
    pub fn advance_to(&mut self, now: SimTime) -> Vec<Delivery> {
        let mut ready = Vec::new();
        self.advance_into(now, &mut ready);
        ready
    }

    /// Advances the fabric to `now`, appending all deliveries that
    /// completed at or before `now` to `out` in chronological order.
    pub fn advance_into(&mut self, now: SimTime, out: &mut Vec<Delivery>) {
        // Process hop completions in global time order (the wake index is
        // conservative: every pending delivery has an entry at or before
        // its true time) so FIFO queues see arrivals chronologically.
        // Fault-delayed transfers are released interleaved at their exact
        // instants so link FIFOs still see arrivals in time order.
        loop {
            let wake_head = self.wake.peek().map(|Reverse((t, _))| *t);
            if let Some(Reverse(head)) = self.delayed.peek() {
                let rt = head.at;
                if rt <= now && wake_head.is_none_or(|wt| rt <= wt) {
                    let Some(Reverse(d)) = self.delayed.pop() else {
                        unreachable!("peeked head vanished")
                    };
                    if d.fault_hold {
                        if let Some(f) = self.faults.as_mut() {
                            f.held_now = f.held_now.saturating_sub(1);
                            if self.tracer.is_enabled() {
                                self.tracer.counter(
                                    "net",
                                    "held_transfers",
                                    0,
                                    rt,
                                    f.held_now as f64,
                                );
                            }
                        }
                    }
                    self.route(rt, d.state);
                    continue;
                }
            }
            let Some(&Reverse((t, idx))) = self.wake.peek() else {
                break;
            };
            if t > now {
                break;
            }
            self.wake.pop();
            let idx = idx as usize;
            match self.links[idx].next_delivery() {
                // Process only exact matches: a stale entry's true time
                // might exceed another link's pending head, and handling
                // it now would break global chronological order.
                Some(actual) if actual == t => {
                    let (at, state) = self.links[idx]
                        .pop_ready(now)
                        .expect("verified delivery not ready");
                    if let Some(next) = self.links[idx].next_delivery() {
                        self.wake.push(Reverse((next, idx as u32)));
                    }
                    self.sample_link(at, idx);
                    self.route(at, state);
                }
                Some(actual) => {
                    // Stale-early entry: requeue at the true time.
                    debug_assert!(actual > t, "FIFO heads never move earlier");
                    self.wake.push(Reverse((actual, idx as u32)));
                }
                None => {}
            }
        }
        // Emit due deliveries; the heap pops them in (delivered_at, id)
        // order, so no sort pass and no per-delivery clone.
        while let Some(Reverse(p)) = self.local.peek() {
            if p.0.delivered_at > now {
                break;
            }
            let Some(Reverse(p)) = self.local.pop() else {
                unreachable!("peeked head vanished")
            };
            out.push(p.0);
        }
    }

    /// Bytes that crossed the wireless edge↔cloud boundary, total.
    pub fn edge_bytes_total(&self) -> f64 {
        self.edge_meter.total()
    }

    /// Closes the meters at `end` and returns `(edge, total)` meters.
    pub fn finish_meters(&mut self, end: SimTime) -> (&Meter, &Meter) {
        self.edge_meter.finish(end);
        self.total_meter.finish(end);
        (&self.edge_meter, &self.total_meter)
    }

    /// Read-only access to the edge meter (traffic over wireless links).
    pub fn edge_meter(&self) -> &Meter {
        &self.edge_meter
    }

    /// Current number of items queued/in flight on each link, for
    /// congestion diagnostics (allocation-free; collect if a `Vec` is
    /// needed).
    pub fn link_loads(&self) -> impl Iterator<Item = usize> + '_ {
        self.links.iter().map(|l| l.load())
    }
}

impl Component for Fabric {
    type Command = Transfer;
    type Output = Delivery;

    fn handle(&mut self, now: SimTime, cmd: Transfer) {
        self.send(now, cmd);
    }

    fn next_wakeup(&self) -> Option<SimTime> {
        Fabric::next_wakeup(self)
    }

    fn advance(&mut self, now: SimTime, out: &mut Vec<Delivery>) {
        self.advance_into(now, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyParams;

    fn fabric() -> Fabric {
        Fabric::new(Topology::new(TopologyParams::default()))
    }

    fn drain(f: &mut Fabric) -> Vec<Delivery> {
        let mut out = Vec::new();
        while let Some(t) = f.next_wakeup() {
            out.extend(f.advance_to(t));
        }
        out
    }

    #[test]
    fn uplink_transfer_latency_scales_with_size() {
        let mut f = fabric();
        f.send(
            SimTime::ZERO,
            Transfer {
                src: Node::Device(0),
                dst: Node::Server(0),
                bytes: 2_000_000,
                tag: 0,
            },
        );
        let d = drain(&mut f);
        assert_eq!(d.len(), 1);
        let lat = d[0].latency().as_secs_f64();
        // 2 MB over 108.375 MB/s WiFi ≈ 18.5 ms, plus store-and-forward
        // serialization on the trunk/switch/NIC hops ≈ 18 ms more.
        assert!(lat > 0.018 && lat < 0.060, "latency {lat}");
    }

    #[test]
    fn wireless_contention_serializes_same_router() {
        let mut f = fabric();
        // Devices 0 and 2 share router 0; send two 2 MB frames at once.
        for (dev, tag) in [(0u32, 1u64), (2, 2)] {
            f.send(
                SimTime::ZERO,
                Transfer {
                    src: Node::Device(dev),
                    dst: Node::Server(0),
                    bytes: 2_000_000,
                    tag,
                },
            );
        }
        let d = drain(&mut f);
        assert_eq!(d.len(), 2);
        let gap = d[1].delivered_at - d[0].delivered_at;
        // Second frame waits a full transmission slot (~18.5 ms) on WiFi.
        assert!(gap.as_millis_f64() > 15.0, "gap {gap}");
    }

    #[test]
    fn different_routers_do_not_contend() {
        let mut f = fabric();
        // Devices 0 and 1 use different routers under round-robin.
        for (dev, tag) in [(0u32, 1u64), (1, 2)] {
            f.send(
                SimTime::ZERO,
                Transfer {
                    src: Node::Device(dev),
                    dst: Node::Server(0),
                    bytes: 2_000_000,
                    tag,
                },
            );
        }
        let d = drain(&mut f);
        let gap = (d[1].delivered_at - d[0].delivered_at).as_millis_f64();
        // Only the shared 10 GbE NIC-rx serializes (~1.6 ms for 2 MB),
        // far below the ~18.5 ms WiFi slot seen on a shared router.
        assert!(gap < 5.0, "gap {gap} ms");
    }

    #[test]
    fn server_to_server_is_fast() {
        let mut f = fabric();
        f.send(
            SimTime::ZERO,
            Transfer {
                src: Node::Server(0),
                dst: Node::Server(1),
                bytes: 1_000_000,
                tag: 0,
            },
        );
        let d = drain(&mut f);
        // 1 MB at 10 Gb/s ≈ 0.8 ms + small switch time.
        assert!(d[0].latency().as_millis_f64() < 3.0);
    }

    #[test]
    fn local_transfer_uses_loopback_delay() {
        let mut f = fabric();
        f.send(
            SimTime::from_secs(1),
            Transfer {
                src: Node::Server(0),
                dst: Node::Server(0),
                bytes: 123,
                tag: 9,
            },
        );
        let d = drain(&mut f);
        assert_eq!(d[0].latency(), SimDuration::from_micros(50));
    }

    #[test]
    fn edge_meter_only_counts_wireless_paths() {
        let mut f = fabric();
        f.send(
            SimTime::ZERO,
            Transfer {
                src: Node::Server(0),
                dst: Node::Server(1),
                bytes: 5_000,
                tag: 0,
            },
        );
        f.send(
            SimTime::ZERO,
            Transfer {
                src: Node::Device(0),
                dst: Node::Server(1),
                bytes: 7_000,
                tag: 0,
            },
        );
        assert_eq!(f.edge_bytes_total(), 7_000.0);
    }

    #[test]
    fn deliveries_are_chronological() {
        let mut f = fabric();
        for i in 0..20u32 {
            f.send(
                SimTime::ZERO,
                Transfer {
                    src: Node::Device(i % 16),
                    dst: Node::Server(i % 12),
                    bytes: 500_000 + (i as u64) * 10_000,
                    tag: i as u64,
                },
            );
        }
        let d = drain(&mut f);
        assert_eq!(d.len(), 20);
        for pair in d.windows(2) {
            assert!(pair[0].delivered_at <= pair[1].delivered_at);
        }
    }

    #[test]
    fn ids_are_unique_and_monotone() {
        let mut f = fabric();
        let a = f.send(
            SimTime::ZERO,
            Transfer {
                src: Node::Device(0),
                dst: Node::Server(0),
                bytes: 1,
                tag: 0,
            },
        );
        let b = f.send(
            SimTime::ZERO,
            Transfer {
                src: Node::Device(1),
                dst: Node::Server(0),
                bytes: 1,
                tag: 0,
            },
        );
        assert!(b > a);
    }

    #[test]
    fn backpressure_holds_but_never_drops() {
        let mut bounded = fabric();
        bounded.set_backpressure(NetBackpressure {
            ingress_bound: Some(1),
            retry_delay: SimDuration::from_millis(5),
        });
        // Device 0 and 2 share router 0: a burst of frames overflows the
        // one-deep ingress bound immediately.
        for tag in 0..8u64 {
            bounded.send(
                SimTime::ZERO,
                Transfer {
                    src: Node::Device((tag % 2) as u32 * 2),
                    dst: Node::Server(0),
                    bytes: 2_000_000,
                    tag,
                },
            );
        }
        let d = drain(&mut bounded);
        assert_eq!(d.len(), 8, "backpressure must hold, not drop");
        assert!(
            bounded.backpressure_holds() > 0,
            "burst past the bound must record holds"
        );
        for pair in d.windows(2) {
            assert!(pair[0].delivered_at <= pair[1].delivered_at);
        }
    }

    #[test]
    fn inactive_backpressure_is_inert() {
        let mut plain = fabric();
        let mut armed = fabric();
        armed.set_backpressure(NetBackpressure::default());
        for f in [&mut plain, &mut armed] {
            for tag in 0..6u64 {
                f.send(
                    SimTime::ZERO,
                    Transfer {
                        src: Node::Device(0),
                        dst: Node::Server(0),
                        bytes: 1_000_000,
                        tag,
                    },
                );
            }
        }
        assert_eq!(drain(&mut plain), drain(&mut armed));
        assert_eq!(armed.backpressure_holds(), 0);
    }

    #[test]
    fn partition_holds_are_accounted_and_released() {
        use hivemind_sim::rng::RngForge;

        let mut f = fabric();
        let cfg = hivemind_sim::faults::FaultPlan::default()
            .partition(1.0, 2.0)
            .net;
        f.set_faults(cfg, RngForge::new(7).child("faults").stream("net"));
        // Two transfers inside the window are held; one before it is not.
        f.send(
            SimTime::ZERO,
            Transfer {
                src: Node::Device(0),
                dst: Node::Server(0),
                bytes: 1_000,
                tag: 0,
            },
        );
        for tag in 1..3u64 {
            f.send(
                SimTime::from_secs(1),
                Transfer {
                    src: Node::Device(tag as u32),
                    dst: Node::Server(0),
                    bytes: 1_000,
                    tag,
                },
            );
        }
        assert_eq!(f.held_transfers_now(), 2);
        assert_eq!(f.fault_stats().held_high_water, 2);
        assert_eq!(f.fault_stats().transfers_dropped, 0);
        let d = drain(&mut f);
        assert_eq!(d.len(), 3, "unbounded holds never drop");
        assert_eq!(f.held_transfers_now(), 0, "releases drain the ledger");
        assert_eq!(f.fault_stats().held_high_water, 2);
    }

    #[test]
    fn hold_bound_tail_drops_past_capacity() {
        use hivemind_sim::rng::RngForge;

        let mut f = fabric();
        let cfg = hivemind_sim::faults::FaultPlan::default()
            .partition(1.0, 2.0)
            .partition_hold_bound(2)
            .net;
        f.set_faults(cfg, RngForge::new(7).child("faults").stream("net"));
        for tag in 0..5u64 {
            f.send(
                SimTime::from_secs(1),
                Transfer {
                    src: Node::Device(tag as u32),
                    dst: Node::Server(0),
                    bytes: 1_000,
                    tag,
                },
            );
        }
        assert_eq!(f.held_transfers_now(), 2, "bound caps the hold buffer");
        assert_eq!(f.fault_stats().transfers_dropped, 3);
        assert_eq!(f.fault_stats().held_high_water, 2);
        let d = drain(&mut f);
        // Oldest two (held before the bound filled) survive the window.
        assert_eq!(d.len(), 2);
        let tags: Vec<u64> = d.iter().map(|x| x.tag).collect();
        assert_eq!(tags, vec![0, 1]);
        assert_eq!(f.held_transfers_now(), 0);
    }

    #[test]
    fn saturation_grows_queues() {
        let mut f = fabric();
        // Offer ~16 drones * 8 fps * 2 MB = 256 MB/s against ~217 MB/s of
        // aggregate WiFi capacity -> queues must grow.
        let mut t = SimTime::ZERO;
        for round in 0..40 {
            for dev in 0..16u32 {
                f.send(
                    t,
                    Transfer {
                        src: Node::Device(dev),
                        dst: Node::Server(dev % 12),
                        bytes: 2_000_000,
                        tag: round,
                    },
                );
            }
            t += SimDuration::from_millis(125);
        }
        let d = drain(&mut f);
        let first = d.first().unwrap().latency().as_secs_f64();
        let last = d.last().unwrap().latency().as_secs_f64();
        assert!(
            last > first * 2.0,
            "latency should inflate under saturation: first {first}, last {last}"
        );
    }
}
